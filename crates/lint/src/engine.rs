//! Per-file analysis: classification, test regions, pragmas and the
//! token-level D/P rules.

use crate::lexer::{lex, Tok, Token};
use crate::rules::{Rule, Violation};

/// What kind of source file this is — rules apply per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every rule family applies.
    Lib,
    /// A binary target (`src/bin/**`, `src/main.rs`, `build.rs`):
    /// drivers may panic on startup errors and time themselves.
    Bin,
    /// An example: exempt like binaries.
    Example,
    /// Test code (`tests/` trees and the `bosim-tests` member).
    Test,
}

/// A classified source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// Crate name (the directory under `crates/`), or `"tests"` /
    /// `"examples"` for the workspace-level trees.
    pub krate: String,
    /// Target classification.
    pub kind: FileKind,
}

/// Crates whose library code feeds `SimResult`s or report output, where
/// rule D001 bans hash-ordered containers outright.
pub const DETERMINISM_CRATES: [&str; 8] = [
    "core",
    "cache",
    "cpu",
    "dram",
    "sim",
    "adapt",
    "baselines",
    "obs",
];

/// Extra library files under non-sensitive crates that still render
/// user-visible output and must stay byte-stable (rule D001).
pub const DETERMINISM_FILES: [&str; 1] = ["crates/trace/src/analyze.rs"];

/// Library modules allowed to read wall clocks (rule D002): the bench
/// timing path (throughput measurement is their purpose) and the host
/// profiler (wall time is its product; it never feeds sim state).
/// The shared artifact store deliberately needs no entry — its
/// freshness keys come from filesystem mtimes (`metadata()`), and its
/// LRU order from a logical counter, never from reading a clock.
/// Likewise the serve journal and queue: resume ordering is by job
/// index, so checkpoint files carry no timestamps at all.
pub const WALL_CLOCK_FILES: [&str; 3] = [
    "crates/bench/src/throughput.rs",
    "crates/bench/src/experiment.rs",
    "crates/obs/src/profile.rs",
];

/// The one library module in the determinism-sensitive crates allowed
/// to spawn threads (rule D004): the deterministic barrier rendezvous.
/// Everywhere else, worker threads could leak host scheduling order
/// into simulated results and need a justified allow-pragma.
pub const THREAD_SPAWN_FILES: [&str; 1] = ["crates/sim/src/barrier.rs"];

impl SourceFile {
    /// Classifies a workspace-relative path. Returns `None` for files
    /// the lint does not scan (lint fixtures, criterion benches).
    pub fn classify(path: &str) -> Option<SourceFile> {
        if !path.ends_with(".rs")
            || path.contains("/fixtures/")
            || path.contains("/benches/")
            || path.contains("/target/")
        {
            return None;
        }
        let krate = path
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next())
            .unwrap_or_else(|| {
                if path.starts_with("examples/") {
                    "examples"
                } else {
                    "tests"
                }
            })
            .to_string();
        let kind = if path.starts_with("tests/") || path.contains("/tests/") {
            FileKind::Test
        } else if path.starts_with("examples/") || path.contains("/examples/") {
            FileKind::Example
        } else if path.contains("/src/bin/")
            || path.ends_with("/main.rs")
            || path.ends_with("build.rs")
        {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        Some(SourceFile {
            path: path.to_string(),
            krate,
            kind,
        })
    }

    fn is_determinism_sensitive(&self) -> bool {
        DETERMINISM_CRATES.contains(&self.krate.as_str())
            || DETERMINISM_FILES.contains(&self.path.as_str())
    }

    fn may_read_wall_clock(&self) -> bool {
        WALL_CLOCK_FILES.contains(&self.path.as_str())
    }

    fn may_spawn_threads(&self) -> bool {
        THREAD_SPAWN_FILES.contains(&self.path.as_str())
    }
}

/// A parsed `// bosim-lint: …` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pragma {
    /// `allow(<RULE>, <reason>)` — suppresses `RULE` on this or the
    /// next source line; the reason is mandatory.
    Allow(Rule),
    /// `schema(<label>)` — marks the following struct for S-rules.
    Schema(String),
}

/// A schema-marked struct: its label and public field names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaStruct {
    /// Label from the `schema(…)` pragma.
    pub label: String,
    /// Struct name.
    pub name: String,
    /// Crate the struct lives in.
    pub krate: String,
    /// Path and line of the struct definition.
    pub file: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Public field names, in declaration order.
    pub fields: Vec<String>,
}

/// Everything one file contributes to the workspace-wide analysis.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// D/P/L violations found in this file.
    pub violations: Vec<Violation>,
    /// Schema-marked structs defined in this file.
    pub schemas: Vec<SchemaStruct>,
    /// String literals appearing in non-test code (JSON keys live
    /// here); consumed by the S-rule cross-check.
    pub strings: Vec<String>,
}

/// Lints one file's source text.
pub fn analyze(file: &SourceFile, src: &str) -> FileAnalysis {
    let tokens = lex(src);
    let test_spans = test_spans(&tokens);
    let in_test =
        |idx: usize| file.kind == FileKind::Test || test_spans.iter().any(|s| s.contains(&idx));

    let mut out = FileAnalysis::default();
    let mut pragmas: Vec<(u32, Pragma)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if let Tok::LineComment(text) = &t.tok {
            match parse_pragma(text) {
                PragmaParse::None => {}
                PragmaParse::Ok(p) => {
                    if let Pragma::Schema(label) = &p {
                        match collect_schema(file, &tokens, i, label) {
                            Some(s) => out.schemas.push(s),
                            None => out.violations.push(Violation {
                                rule: Rule::L001,
                                file: file.path.clone(),
                                line: t.line,
                                message: format!(
                                    "schema({label}) pragma is not followed by a struct \
                                     with named fields"
                                ),
                            }),
                        }
                    }
                    pragmas.push((t.line, p));
                }
                PragmaParse::Bad(why) => out.violations.push(Violation {
                    rule: Rule::L001,
                    file: file.path.clone(),
                    line: t.line,
                    message: why,
                }),
            }
        }
    }

    let allowed = |rule: Rule, line: u32| {
        pragmas
            .iter()
            .any(|(l, p)| *p == Pragma::Allow(rule) && (*l == line || l.wrapping_add(1) == line))
    };
    let mut fire = |rule: Rule, line: u32, message: String| {
        if !allowed(rule, line) {
            out.violations.push(Violation {
                rule,
                file: file.path.clone(),
                line,
                message,
            });
        }
    };

    // Token index of the previous / next non-comment token.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    for (ci, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        let Some(name) = t.ident() else { continue };
        if in_test(i) {
            continue;
        }
        let prev = ci.checked_sub(1).map(|p| &tokens[code[p]]);
        let next = code.get(ci + 1).map(|&n| &tokens[n]);
        let next2 = code.get(ci + 2).map(|&n| &tokens[n]);
        let next3 = code.get(ci + 3).map(|&n| &tokens[n]);

        // Non-test string literals feed the S-rule JSON-key cross-check
        // (collected here so the loop owns all token context).
        match name {
            "unwrap"
                if file.kind == FileKind::Lib
                    && prev.is_some_and(|p| p.is_punct('.'))
                    && next.is_some_and(|n| n.is_punct('(')) =>
            {
                fire(Rule::P001, t.line, ".unwrap() in library code".into());
            }
            "expect"
                if file.kind == FileKind::Lib
                    && prev.is_some_and(|p| p.is_punct('.'))
                    && next.is_some_and(|n| n.is_punct('(')) =>
            {
                fire(Rule::P002, t.line, ".expect(…) in library code".into());
            }
            // `panic!` the macro — not `std::panic::catch_unwind`.
            "panic" | "todo" | "unimplemented"
                if file.kind == FileKind::Lib && next.is_some_and(|n| n.is_punct('!')) =>
            {
                fire(Rule::P003, t.line, format!("{name}! in library code"));
            }
            "HashMap" | "HashSet"
                if file.kind == FileKind::Lib && file.is_determinism_sensitive() =>
            {
                fire(
                    Rule::D001,
                    t.line,
                    format!(
                        "{name} in determinism-sensitive crate `{}` (iteration order is \
                         randomised; use BTreeMap/BTreeSet or sort before iterating)",
                        file.krate
                    ),
                );
            }
            "Instant" | "SystemTime" if file.kind == FileKind::Lib => {
                let is_now = next.is_some_and(|n| n.is_punct(':'))
                    && next2.is_some_and(|n| n.is_punct(':'))
                    && next3.is_some_and(|n| n.ident() == Some("now"));
                if is_now && !file.may_read_wall_clock() {
                    fire(
                        Rule::D002,
                        t.line,
                        format!("{name}::now() outside the timing modules"),
                    );
                }
            }
            "RandomState" | "thread_rng" | "getrandom" | "from_entropy"
                if file.kind == FileKind::Lib =>
            {
                fire(Rule::D003, t.line, format!("unseeded randomness: {name}"));
            }
            // `thread::spawn` / `thread::scope` / `thread::Builder` —
            // yield_now/available_parallelism don't create threads and
            // stay legal everywhere.
            "thread"
                if file.kind == FileKind::Lib
                    && file.is_determinism_sensitive()
                    && !file.may_spawn_threads()
                    && next.is_some_and(|n| n.is_punct(':'))
                    && next2.is_some_and(|n| n.is_punct(':'))
                    && next3.is_some_and(|n| {
                        matches!(n.ident(), Some("spawn" | "scope" | "Builder"))
                    }) =>
            {
                let what = next3.and_then(|n| n.ident()).unwrap_or("spawn");
                fire(
                    Rule::D004,
                    t.line,
                    format!(
                        "thread::{what} in determinism-sensitive crate `{}` outside \
                         the barrier module (scheduling order may leak into results)",
                        file.krate
                    ),
                );
            }
            _ => {}
        }
    }

    for (i, t) in tokens.iter().enumerate() {
        if let Tok::Str(s) = &t.tok {
            if !in_test(i) {
                out.strings.push(s.clone());
            }
        }
    }
    out
}

/// Result of scanning a comment for a pragma.
enum PragmaParse {
    None,
    Ok(Pragma),
    Bad(String),
}

/// Parses `bosim-lint:` directives out of a line comment's text.
fn parse_pragma(comment: &str) -> PragmaParse {
    let text = comment.trim();
    let Some(body) = text.strip_prefix("bosim-lint:") else {
        return PragmaParse::None;
    };
    let body = body.trim();
    if let Some(args) = strip_call(body, "allow") {
        let (id, reason) = match args.split_once(',') {
            Some((id, reason)) => (id.trim(), reason.trim()),
            None => (args.trim(), ""),
        };
        let Some(rule) = Rule::parse(id) else {
            return PragmaParse::Bad(format!("allow-pragma names unknown rule {id:?}"));
        };
        if reason.is_empty() {
            return PragmaParse::Bad(format!(
                "allow({id}) pragma has no reason — write allow({id}, <why this is sound>)"
            ));
        }
        return PragmaParse::Ok(Pragma::Allow(rule));
    }
    if let Some(label) = strip_call(body, "schema") {
        let label = label.trim();
        if label.is_empty() {
            return PragmaParse::Bad("schema() pragma has no label".into());
        }
        return PragmaParse::Ok(Pragma::Schema(label.to_string()));
    }
    PragmaParse::Bad(format!(
        "unknown bosim-lint directive {body:?} (expected allow(RULE, reason) or schema(label))"
    ))
}

/// `strip_call("allow(x, y)", "allow")` → `Some("x, y")`.
fn strip_call<'a>(body: &'a str, name: &str) -> Option<&'a str> {
    body.strip_prefix(name)?
        .trim_start()
        .strip_prefix('(')?
        .strip_suffix(')')
}

/// Byte-index spans of `#[cfg(test)]` / `#[test]` items in the token
/// stream. The span covers the attribute through the end of the item it
/// decorates (matched braces, or the terminating `;` for brace-less
/// items).
fn test_spans(tokens: &[Token]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut is_test = false;
            let mut negated = false;
            while j < tokens.len() && depth > 0 {
                let t = &tokens[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                } else if t.ident() == Some("test") {
                    is_test = true;
                } else if t.ident() == Some("not") {
                    negated = true;
                }
                j += 1;
            }
            if is_test && !negated {
                // Find the decorated item's end: first `{` → matching
                // `}`, or a `;` before any `{`.
                let mut k = j;
                let mut braces = 0i32;
                while k < tokens.len() {
                    let t = &tokens[k];
                    if t.is_punct('{') {
                        braces += 1;
                    } else if t.is_punct('}') {
                        braces -= 1;
                        if braces == 0 {
                            break;
                        }
                    } else if t.is_punct(';') && braces == 0 {
                        break;
                    }
                    k += 1;
                }
                spans.push(i..k + 1);
                i = k + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// Reads the struct following a `schema(label)` pragma at token `at`.
fn collect_schema(
    file: &SourceFile,
    tokens: &[Token],
    at: usize,
    label: &str,
) -> Option<SchemaStruct> {
    // Skip comments, attributes and doc comments to `pub struct Name {`.
    let mut i = at + 1;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() {
            i += 1;
        } else if t.is_punct('#') {
            let mut depth = 0i32;
            i += 1;
            while i < tokens.len() {
                if tokens[i].is_punct('[') {
                    depth += 1;
                } else if tokens[i].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        } else {
            break;
        }
    }
    while tokens.get(i).and_then(|t| t.ident()) == Some("pub") {
        i += 1;
    }
    if tokens.get(i).and_then(|t| t.ident()) != Some("struct") {
        return None;
    }
    let line = tokens[i].line;
    let name = tokens.get(i + 1)?.ident()?.to_string();
    // Advance to the opening brace (skipping any generics).
    let mut j = i + 2;
    while j < tokens.len() && !tokens[j].is_punct('{') {
        if tokens[j].is_punct(';') || tokens[j].is_punct('(') {
            return None; // unit or tuple struct: nothing to schema-check
        }
        j += 1;
    }
    // Collect `pub <field>:` at brace depth 1, paren/bracket depth 0.
    let mut fields = Vec::new();
    let (mut braces, mut parens, mut brackets) = (0i32, 0i32, 0i32);
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('{') {
            braces += 1;
        } else if t.is_punct('}') {
            braces -= 1;
            if braces == 0 {
                break;
            }
        } else if t.is_punct('(') {
            parens += 1;
        } else if t.is_punct(')') {
            parens -= 1;
        } else if t.is_punct('[') {
            brackets += 1;
        } else if t.is_punct(']') {
            brackets -= 1;
        } else if braces == 1
            && parens == 0
            && brackets == 0
            && t.ident() == Some("pub")
            && tokens.get(j + 2).is_some_and(|c| c.is_punct(':'))
        {
            if let Some(f) = tokens.get(j + 1).and_then(|t| t.ident()) {
                fields.push(f.to_string());
            }
        }
        j += 1;
    }
    if fields.is_empty() {
        return None;
    }
    Some(SchemaStruct {
        label: label.to_string(),
        name,
        krate: file.krate.clone(),
        file: file.path.clone(),
        line,
        fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(path: &str) -> SourceFile {
        SourceFile::classify(path).expect("classifiable")
    }

    fn lint(path: &str, src: &str) -> Vec<Violation> {
        analyze(&lib(path), src).violations
    }

    #[test]
    fn classification() {
        assert_eq!(lib("crates/cache/src/fill.rs").kind, FileKind::Lib);
        assert_eq!(lib("crates/cache/src/fill.rs").krate, "cache");
        assert_eq!(lib("crates/cli/src/main.rs").kind, FileKind::Bin);
        assert_eq!(lib("crates/bench/src/bin/perf.rs").kind, FileKind::Bin);
        assert_eq!(lib("crates/cache/tests/e2e.rs").kind, FileKind::Test);
        assert_eq!(lib("tests/tests/golden_stats.rs").kind, FileKind::Test);
        assert_eq!(lib("tests/src/lib.rs").kind, FileKind::Test);
        assert_eq!(lib("examples/quickstart.rs").kind, FileKind::Example);
        assert!(SourceFile::classify("crates/lint/fixtures/p001.rs").is_none());
        assert!(SourceFile::classify("crates/bench/benches/micro.rs").is_none());
    }

    #[test]
    fn unwrap_fires_only_in_lib_code() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(lint("crates/cache/src/a.rs", src).len(), 1);
        assert_eq!(lint("crates/cache/src/a.rs", src)[0].rule, Rule::P001);
        assert!(lint("crates/cli/src/main.rs", src).is_empty());
        assert!(lint("tests/tests/a.rs", src).is_empty());
        // unwrap_or_else is a different identifier entirely.
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }";
        assert!(lint("crates/cache/src/a.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = r#"
            pub fn ok() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() { None::<u8>.unwrap(); panic!("boom"); }
            }
        "#;
        assert!(lint("crates/sim/src/a.rs", src).is_empty());
        // …but cfg(not(test)) is live code.
        let src = "#[cfg(not(test))]\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(lint("crates/sim/src/a.rs", src).len(), 1);
    }

    #[test]
    fn pragmas_suppress_on_their_own_line_or_trailing() {
        let above = "pub fn f(x: Option<u8>) -> u8 {\n\
                     // bosim-lint: allow(P001, checked by caller)\n\
                     x.unwrap() }";
        assert!(lint("crates/cache/src/a.rs", above).is_empty());
        let trailing = "pub fn f(x: Option<u8>) -> u8 {\n\
                        x.unwrap() // bosim-lint: allow(P001, checked by caller)\n}";
        assert!(lint("crates/cache/src/a.rs", trailing).is_empty());
        // A pragma two lines up does not reach.
        let far = "pub fn f(x: Option<u8>) -> u8 {\n\
                   // bosim-lint: allow(P001, checked by caller)\n\n\
                   x.unwrap() }";
        assert_eq!(lint("crates/cache/src/a.rs", far).len(), 1);
    }

    #[test]
    fn bad_pragmas_are_violations() {
        let missing_reason = "// bosim-lint: allow(P001)\npub fn f() {}";
        let v = lint("crates/cache/src/a.rs", missing_reason);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::L001);
        let unknown_rule = "// bosim-lint: allow(Q999, whatever)\npub fn f() {}";
        assert_eq!(
            lint("crates/cache/src/a.rs", unknown_rule)[0].rule,
            Rule::L001
        );
        let unknown_directive = "// bosim-lint: deny(P001)\npub fn f() {}";
        assert_eq!(
            lint("crates/cache/src/a.rs", unknown_directive)[0].rule,
            Rule::L001
        );
    }

    #[test]
    fn d_rules_scope_to_sensitive_paths() {
        let src = "use std::collections::HashMap;";
        assert_eq!(lint("crates/sim/src/a.rs", src)[0].rule, Rule::D001);
        assert_eq!(lint("crates/trace/src/analyze.rs", src)[0].rule, Rule::D001);
        assert!(lint("crates/trace/src/champsim.rs", src).is_empty());
        assert!(lint("crates/stats/src/a.rs", src).is_empty());

        let now = "pub fn t() { let _ = std::time::Instant::now(); }";
        assert_eq!(lint("crates/stats/src/a.rs", now)[0].rule, Rule::D002);
        assert!(lint("crates/bench/src/throughput.rs", now).is_empty());

        // The checkpoint/resume path is deliberately wall-clock-free:
        // the artifact store keys freshness on filesystem mtimes and a
        // logical LRU counter, and the serve journal orders rows by
        // job index, so none of these modules holds a D002 allowance.
        for path in [
            "crates/trace/src/artifact.rs",
            "crates/trace/src/ingest.rs",
            "crates/bench/src/journal.rs",
            "crates/cli/src/queue.rs",
            "crates/cli/src/serve.rs",
        ] {
            assert_eq!(lint(path, now)[0].rule, Rule::D002, "{path}");
        }
        // The type alone (without ::now) is fine anywhere.
        let ty = "pub fn t(at: std::time::Instant) {}";
        assert!(lint("crates/stats/src/a.rs", ty).is_empty());

        let rng = "use std::collections::hash_map::RandomState;";
        assert_eq!(lint("crates/stats/src/a.rs", rng)[0].rule, Rule::D003);
    }

    #[test]
    fn thread_spawning_is_confined_to_the_barrier_module() {
        for src in [
            "pub fn f() { std::thread::spawn(|| {}); }",
            "pub fn f() { std::thread::scope(|s| {}); }",
            "pub fn f() { let b = std::thread::Builder::new(); }",
        ] {
            let v = lint("crates/sim/src/uncore.rs", src);
            assert_eq!(v.len(), 1, "{src}");
            assert_eq!(v[0].rule, Rule::D004, "{src}");
            // The barrier module is the sanctioned home…
            assert!(lint("crates/sim/src/barrier.rs", src).is_empty(), "{src}");
            // …and non-sensitive crates may thread freely.
            assert!(lint("crates/bench/src/runner.rs", src).is_empty(), "{src}");
        }
        // Non-spawning thread APIs stay legal everywhere.
        let benign = "pub fn f() { std::thread::yield_now(); \
                      let _ = std::thread::available_parallelism(); }";
        assert!(lint("crates/sim/src/uncore.rs", benign).is_empty());
        // A justified pragma overrides the confinement.
        let allowed = "pub fn f() {\n\
                       // bosim-lint: allow(D004, independent whole-run workers)\n\
                       std::thread::scope(|s| {}); }";
        assert!(lint("crates/sim/src/runner.rs", allowed).is_empty());
    }

    #[test]
    fn schema_structs_are_collected() {
        let src = r#"
            // bosim-lint: schema(demo)
            #[derive(Debug, Clone)]
            pub struct Demo {
                /// Docs.
                pub ipc: f64,
                pub pairs: Vec<(String, u64)>,
                secret: u8,
            }
        "#;
        let a = analyze(&lib("crates/adapt/src/a.rs"), src);
        assert_eq!(a.schemas.len(), 1);
        assert_eq!(a.schemas[0].name, "Demo");
        assert_eq!(a.schemas[0].fields, ["ipc", "pairs"]);
        // A schema pragma with no struct after it is malformed.
        let a = analyze(
            &lib("crates/adapt/src/a.rs"),
            "// bosim-lint: schema(x)\npub fn f() {}",
        );
        assert_eq!(a.violations[0].rule, Rule::L001);
    }

    #[test]
    fn strings_in_test_code_do_not_count_as_json_keys() {
        let src = r#"
            pub fn writer() -> &'static str { "ipc" }
            #[cfg(test)]
            mod tests { pub fn t() -> &'static str { "only_in_tests" } }
        "#;
        let a = analyze(&lib("crates/adapt/src/a.rs"), src);
        assert!(a.strings.contains(&"ipc".to_string()));
        assert!(!a.strings.contains(&"only_in_tests".to_string()));
    }
}
