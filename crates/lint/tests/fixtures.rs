//! Pins each lint rule to a fixture file: every rule fires on its
//! firing fixture, every pragma position suppresses on `suppressed.rs`,
//! and near-miss patterns stay silent on `clean.rs`.
//!
//! The fixtures live under `crates/lint/fixtures/`, which the
//! workspace walk skips; here they are replayed through
//! [`bosim_lint::lint_sources`] under simulated sensitive paths.

use bosim_lint::{lint_sources, LintReport, Rule};

/// Lints one fixture as if it lived at `path`, against docs that only
/// document the `ipc` field.
fn lint_at(path: &str, contents: &str) -> LintReport {
    let sources = vec![(path.to_string(), contents.to_string())];
    lint_sources(&sources, "| `ipc` | instructions per cycle |")
}

/// The rule ids that fired, in report order.
fn rules(report: &LintReport) -> Vec<Rule> {
    report.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn d001_fires_on_hash_containers_in_sensitive_crates() {
    let fixture = include_str!("../fixtures/d001_hash_containers.rs");
    let report = lint_at("crates/cache/src/fixture.rs", fixture);
    assert_eq!(
        rules(&report),
        [Rule::D001, Rule::D001, Rule::D001, Rule::D001],
        "{report:?}"
    );
    assert!(!report.is_clean());
    // The same file in a non-sensitive crate is silent.
    let report = lint_at("crates/stats/src/fixture.rs", fixture);
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn d002_fires_on_wall_clocks_outside_timing_modules() {
    let fixture = include_str!("../fixtures/d002_wall_clock.rs");
    let report = lint_at("crates/stats/src/fixture.rs", fixture);
    assert_eq!(rules(&report), [Rule::D002, Rule::D002], "{report:?}");
    // The bench timing path is exempt by design.
    let report = lint_at("crates/bench/src/throughput.rs", fixture);
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn d003_fires_on_unseeded_randomness() {
    let fixture = include_str!("../fixtures/d003_unseeded_rng.rs");
    let report = lint_at("crates/core/src/fixture.rs", fixture);
    assert_eq!(rules(&report), [Rule::D003, Rule::D003], "{report:?}");
}

#[test]
fn p001_fires_on_unwrap_in_lib_code_only() {
    let fixture = include_str!("../fixtures/p001_unwrap.rs");
    let report = lint_at("crates/cache/src/fixture.rs", fixture);
    assert_eq!(rules(&report), [Rule::P001], "{report:?}");
    // Binaries and tests may unwrap freely.
    assert!(lint_at("crates/cli/src/main.rs", fixture).is_clean());
    assert!(lint_at("tests/tests/fixture.rs", fixture).is_clean());
}

#[test]
fn p002_fires_on_expect() {
    let fixture = include_str!("../fixtures/p002_expect.rs");
    let report = lint_at("crates/sim/src/fixture.rs", fixture);
    assert_eq!(rules(&report), [Rule::P002], "{report:?}");
}

#[test]
fn p003_fires_on_panicking_macros_but_not_unreachable() {
    let fixture = include_str!("../fixtures/p003_panic.rs");
    let report = lint_at("crates/dram/src/fixture.rs", fixture);
    assert_eq!(
        rules(&report),
        [Rule::P003, Rule::P003, Rule::P003],
        "{report:?}"
    );
    for v in &report.violations {
        assert!(
            !v.message.contains("unreachable"),
            "unreachable! must stay allowed: {v:?}"
        );
    }
}

#[test]
fn l001_fires_on_malformed_pragmas() {
    let fixture = include_str!("../fixtures/l001_bad_pragmas.rs");
    let report = lint_at("crates/cache/src/fixture.rs", fixture);
    assert_eq!(
        rules(&report),
        [Rule::L001, Rule::L001, Rule::L001],
        "{report:?}"
    );
    let msgs: Vec<&str> = report
        .violations
        .iter()
        .map(|v| v.message.as_str())
        .collect();
    assert!(msgs[0].contains("no reason"), "{msgs:?}");
    assert!(msgs[1].contains("unknown rule"), "{msgs:?}");
    assert!(msgs[2].contains("unknown bosim-lint directive"), "{msgs:?}");
}

#[test]
fn s_rules_fire_on_schema_drift() {
    let fixture = include_str!("../fixtures/s_schema_drift.rs");
    let report = lint_at("crates/adapt/src/fixture.rs", fixture);
    assert_eq!(report.schemas_checked, 1);
    // `brand_new_counter` is neither emitted (S001) nor documented
    // (S002); `ipc` is both and must not be flagged.
    assert_eq!(rules(&report), [Rule::S001, Rule::S002], "{report:?}");
    for v in &report.violations {
        assert!(v.message.contains("brand_new_counter"), "{v:?}");
    }
}

#[test]
fn well_formed_pragmas_suppress_every_rule() {
    let fixture = include_str!("../fixtures/suppressed.rs");
    let report = lint_at("crates/cache/src/fixture.rs", fixture);
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn near_miss_patterns_stay_silent() {
    let fixture = include_str!("../fixtures/clean.rs");
    let report = lint_at("crates/cache/src/fixture.rs", fixture);
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn fixture_reports_serialise_and_exitworthy() {
    // The JSON report carries every violation; a dirty report is what
    // drives the binary's non-zero exit.
    let fixture = include_str!("../fixtures/p001_unwrap.rs");
    let report = lint_at("crates/cache/src/fixture.rs", fixture);
    let json = report.to_json().to_string();
    assert!(json.contains("\"P001\""), "{json}");
    assert!(json.contains("crates/cache/src/fixture.rs"), "{json}");
    assert!(!report.is_clean());
}
