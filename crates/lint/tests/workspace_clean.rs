//! The self-hosting test: the lint must pass over its own workspace.
//!
//! This is the executable form of the determinism/panic-freedom
//! contract — any new `unwrap()` in library code, hash-ordered
//! container in a sensitive crate, or schema-table drift in
//! `docs/ARCHITECTURE.md` fails this test before it ever reaches CI.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = bosim_lint::run(&root).expect("workspace sources readable");
    assert!(
        report.is_clean(),
        "bosim-lint found violations:\n{}",
        report.table().to_markdown()
    );
    // Sanity: the walk really covered the workspace, not an empty dir.
    assert!(
        report.files_scanned > 100,
        "only {} files scanned — walk is broken",
        report.files_scanned
    );
    // All schema-marked structs were cross-checked: the three report
    // structs, the five observability schemas (report, event, epoch,
    // profile, profile-phase) and the three sweep-service schemas
    // (journal header, journal row, stream event).
    assert_eq!(report.schemas_checked, 11, "schema markers went missing");
}

#[test]
fn architecture_docs_exist_for_schema_rules() {
    // `run()` tolerates missing docs (every field would flag S002), so
    // pin the file's existence separately.
    let docs = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/ARCHITECTURE.md");
    let text = std::fs::read_to_string(&docs).expect("docs/ARCHITECTURE.md exists");
    assert!(
        text.contains("## Report JSON schema"),
        "schema section renamed — update the S-rule docs cross-check"
    );
}
