//! Fixture: hash-ordered containers in a determinism-sensitive crate.
//! Linted as `crates/cache/src/fixture.rs` → two D001 findings.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn sum(counts: &HashMap<u64, u64>, seen: &HashSet<u64>) -> u64 {
    counts.values().sum::<u64>() + seen.len() as u64
}
