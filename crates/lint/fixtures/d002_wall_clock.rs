//! Fixture: wall-clock reads outside the timing modules.
//! Linted as `crates/stats/src/fixture.rs` → two D002 findings.

pub fn stamp() -> (std::time::Instant, std::time::SystemTime) {
    (std::time::Instant::now(), std::time::SystemTime::now())
}
