//! Fixture: a schema-marked counter struct that drifted out of sync.
//! Linted as `crates/adapt/src/fixture.rs` against docs that only know
//! `ipc`: `brand_new_counter` is neither emitted as a JSON key (S001)
//! nor documented (S002); `ipc` is both and stays silent.

use bosim_stats::Json;

/// Per-epoch demo counters.
// bosim-lint: schema(fixture-demo)
pub struct Demo {
    /// Documented and emitted.
    pub ipc: f64,
    /// Added without updating the writer or the docs.
    pub brand_new_counter: u64,
}

impl Demo {
    /// The writer forgot `brand_new_counter`.
    pub fn to_json(&self) -> Json {
        Json::obj([("ipc", Json::from(self.ipc))])
    }
}
