//! Fixture: `.expect(…)` in library code.
//! Linted as `crates/sim/src/fixture.rs` → one P002 finding.

pub fn parse(s: &str) -> u64 {
    s.parse().expect("caller promised digits")
}
