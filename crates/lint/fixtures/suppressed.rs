//! Fixture: every D/P rule suppressed by a well-formed pragma.
//! Linted as `crates/cache/src/fixture.rs` → zero findings. Each
//! pragma carries a reason and sits on the violating line or the line
//! directly above it — the only two positions the lint honours.

use std::collections::HashMap; // bosim-lint: allow(D001, keys are sorted before every iteration)

pub fn clock() -> std::time::Instant {
    // bosim-lint: allow(D002, freshness stamp only, never fed to sim state)
    std::time::Instant::now()
}

pub fn first(xs: &[u64]) -> u64 {
    // bosim-lint: allow(P001, caller guarantees a non-empty slice)
    let head = xs.first().copied().unwrap();
    // bosim-lint: allow(P002, same contract as first())
    let tail = xs.last().copied().expect("non-empty");
    head + tail
}

pub fn never(op: u8) -> u64 {
    // bosim-lint: allow(P003, documented Panics contract)
    panic!("op {op} is outside the ISA")
}

// bosim-lint: allow(D003, deterministic sip keys supplied by the caller)
pub use std::collections::hash_map::RandomState;
