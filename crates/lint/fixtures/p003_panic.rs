//! Fixture: panicking macros in library code.
//! Linted as `crates/dram/src/fixture.rs` → three P003 findings
//! (`panic!`, `todo!`, `unimplemented!`); `unreachable!` and `assert!`
//! are deliberately outside the rule and must stay silent.

pub fn dispatch(op: u8) -> u64 {
    match op {
        0 => panic!("boom"),
        1 => todo!(),
        2 => unimplemented!(),
        3 => unreachable!("guarded by the decoder"),
        n => {
            assert!(n < 8);
            u64::from(n)
        }
    }
}
