//! Fixture: `.unwrap()` in library code.
//! Linted as `crates/cache/src/fixture.rs` → one P001 finding; the
//! `unwrap_or` call and the test-module unwrap must stay silent.

pub fn first(xs: &[u64]) -> u64 {
    let fallback = xs.last().copied().unwrap_or(0);
    xs.first().copied().unwrap() + fallback
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::first(&[7]).checked_mul(1).unwrap(), 14);
    }
}
