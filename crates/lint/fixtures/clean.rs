//! Fixture: patterns that look close to violations but are all legal.
//! Linted as `crates/cache/src/fixture.rs` → zero findings.

/// `unwrap_or_else` / `unwrap_or_default` are different identifiers.
pub fn near_miss(x: Option<u64>) -> u64 {
    x.unwrap_or_else(|| 7) + None::<u64>.unwrap_or_default()
}

/// Taking an `Instant` as data is fine; only `::now()` is a clock read.
pub fn elapsed_cycles(t0: std::time::Instant) -> u128 {
    t0.elapsed().as_nanos()
}

/// Mentions inside strings and comments are not code: HashMap,
/// Instant::now, panic!.
pub fn labels() -> &'static str {
    "HashMap Instant::now() .unwrap() panic!"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_do_anything() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
    }
}
