//! Fixture: unseeded randomness in library code.
//! Linted as `crates/core/src/fixture.rs` → one D003 finding.

use std::collections::hash_map::RandomState;

pub fn hasher() -> RandomState {
    Default::default()
}
