//! Fixture: malformed `bosim-lint:` directives.
//! Linted as `crates/cache/src/fixture.rs` → three L001 findings:
//! a reason-less allow, an unknown rule id, an unknown directive.

// bosim-lint: allow(P001)
// bosim-lint: allow(Q999, no such rule)
// bosim-lint: deny(P001)
pub fn nothing() {}
