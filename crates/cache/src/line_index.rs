//! A small open-addressed line→slot index.
//!
//! The fill and prefetch queues are CAM-searched on every redundancy
//! check — a per-candidate, per-miss operation on the simulator's hot
//! path. The queues themselves stay tiny (8–32 entries), but a linear
//! scan per probe adds up at hundreds of millions of simulated cycles.
//! [`LineIndex`] gives those probes O(1) expected cost: linear probing
//! over a power-of-two table with backward-shift deletion (no
//! tombstones), sized at construction so the load factor stays ≤ 0.5.

use bosim_types::LineAddr;

/// Sentinel for an empty table slot. Line addresses are byte addresses
/// shifted right by six, so `u64::MAX` can never be a real line.
const EMPTY: u64 = u64::MAX;

/// An open-addressed map from [`LineAddr`] to a small slot id.
///
/// Keys must be unique (inserting a present key is a caller bug) and
/// `u64::MAX` is reserved as the empty sentinel.
#[derive(Debug, Clone)]
pub struct LineIndex {
    keys: Vec<u64>,
    vals: Vec<u32>,
    mask: usize,
    len: usize,
}

impl LineIndex {
    /// Creates an index able to hold `cap` entries at load factor ≤ 0.5.
    pub fn with_capacity(cap: usize) -> Self {
        let slots = (cap.max(2) * 2).next_power_of_two();
        LineIndex {
            keys: vec![EMPTY; slots],
            vals: vec![0; slots],
            mask: slots - 1,
            len: 0,
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        // Fibonacci hashing: multiply and keep the top bits.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    #[inline]
    fn probe(&self, key: u64) -> Option<usize> {
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Looks up the slot id stored for `line`.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<u32> {
        debug_assert_ne!(line.0, EMPTY, "u64::MAX is the empty sentinel");
        self.probe(line.0).map(|i| self.vals[i])
    }

    /// True when `line` is present.
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.probe(line.0).is_some()
    }

    /// Inserts `line → slot`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `line` is absent and the table is not full.
    pub fn insert(&mut self, line: LineAddr, slot: u32) {
        debug_assert_ne!(line.0, EMPTY, "u64::MAX is the empty sentinel");
        debug_assert!(self.len <= self.mask, "index sized for ≤ 0.5 load");
        debug_assert!(!self.contains(line), "duplicate line in queue index");
        let mut i = self.home(line.0);
        while self.keys[i] != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.keys[i] = line.0;
        self.vals[i] = slot;
        self.len += 1;
    }

    /// Removes `line`, returning its slot id. Uses backward-shift
    /// deletion so lookups never have to skip tombstones.
    pub fn remove(&mut self, line: LineAddr) -> Option<u32> {
        let mut i = self.probe(line.0)?;
        let val = self.vals[i];
        self.len -= 1;
        // Backward shift: close the hole at `i` by moving any later
        // cluster member whose home lies at or before `i`.
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            let h = self.home(k);
            // `k` may move to `i` iff `i` is cyclically within [h, j).
            if (j.wrapping_sub(h) & self.mask) >= (j.wrapping_sub(i) & self.mask) {
                self.keys[i] = k;
                self.vals[i] = self.vals[j];
                i = j;
            }
        }
        self.keys[i] = EMPTY;
        Some(val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bosim_types::SplitMix64;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut ix = LineIndex::with_capacity(16);
        ix.insert(LineAddr(0), 3);
        ix.insert(LineAddr(7), 1);
        assert_eq!(ix.get(LineAddr(0)), Some(3));
        assert_eq!(ix.get(LineAddr(7)), Some(1));
        assert_eq!(ix.get(LineAddr(8)), None);
        assert_eq!(ix.remove(LineAddr(0)), Some(3));
        assert_eq!(ix.get(LineAddr(0)), None);
        assert_eq!(ix.get(LineAddr(7)), Some(1));
        assert_eq!(ix.remove(LineAddr(0)), None);
        assert_eq!(ix.len(), 1);
    }

    /// Backward-shift deletion must keep every surviving key reachable,
    /// whatever the collision pattern. Randomized against a HashMap.
    #[test]
    fn randomized_against_reference_map() {
        let mut rng = SplitMix64::new(0x11DE);
        for round in 0..64u64 {
            let cap = 4 + (round as usize % 29);
            let mut ix = LineIndex::with_capacity(cap);
            let mut reference: HashMap<u64, u32> = HashMap::new();
            for step in 0..400 {
                // Small key universe to force collisions and re-insertions.
                let key = rng.next_u64() % 64;
                let insert = rng.next_u64().is_multiple_of(2) && reference.len() < cap;
                if insert && !reference.contains_key(&key) {
                    ix.insert(LineAddr(key), step);
                    reference.insert(key, step);
                } else if !insert {
                    assert_eq!(ix.remove(LineAddr(key)), reference.remove(&key));
                }
                assert_eq!(ix.len(), reference.len());
                for k in 0..64u64 {
                    assert_eq!(
                        ix.get(LineAddr(k)),
                        reference.get(&k).copied(),
                        "round {round} step {step} key {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn survives_full_occupancy_churn() {
        let mut ix = LineIndex::with_capacity(8);
        // Fill to declared capacity, then rotate every entry.
        for i in 0..8u64 {
            ix.insert(LineAddr(i * 1024), i as u32);
        }
        for i in 0..8u64 {
            assert_eq!(ix.remove(LineAddr(i * 1024)), Some(i as u32));
            ix.insert(LineAddr(i * 1024 + 1), i as u32);
        }
        for i in 0..8u64 {
            assert_eq!(ix.get(LineAddr(i * 1024 + 1)), Some(i as u32));
        }
    }
}
