//! Fill queues with associative search (§5.4).
//!
//! The baseline has no L2/L3 MSHRs: "Instead, we add associative search
//! capability to the fill queues. A fill queue is a FIFO holding the
//! blocks that are to be inserted in the cache. An entry is allocated in
//! the fill queue when a miss request is issued to the next cache level
//! ... a request is not issued until there is a free entry."
//!
//! Late prefetches: "When a demand miss hits in a fill queue and the block
//! in the fill queue was prefetched, the miss request is dropped and the
//! block in the fill queue is promoted from prefetch to demand miss."

use bosim_types::{LineAddr, ReqClass};
use std::collections::VecDeque;

/// One fill queue entry. `T` is simulator-defined payload (requester
/// bookkeeping: which levels need the block, which loads wait on it).
#[derive(Debug, Clone)]
pub struct FillEntry<T> {
    /// The block's line address.
    pub line: LineAddr,
    /// Data has arrived and the entry is ready for cache insertion.
    pub ready: bool,
    /// Demand/prefetch class; promotion flips prefetch → demand.
    pub class: ReqClass,
    /// Caller payload.
    pub payload: T,
}

/// A bounded FIFO of pending fills with CAM (associative) search.
#[derive(Debug)]
pub struct FillQueue<T> {
    cap: usize,
    entries: VecDeque<FillEntry<T>>,
}

impl<T> FillQueue<T> {
    /// Creates a fill queue of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "fill queue needs capacity");
        FillQueue {
            cap,
            entries: VecDeque::with_capacity(cap),
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no free entry remains (requests must wait, §5.4).
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.cap
    }

    /// Reserves an entry at the tail. Returns `false` (and does nothing)
    /// when the queue is full.
    pub fn try_reserve(&mut self, line: LineAddr, class: ReqClass, payload: T) -> bool {
        if self.is_full() {
            return false;
        }
        self.entries.push_back(FillEntry {
            line,
            ready: false,
            class,
            payload,
        });
        true
    }

    /// CAM search for a pending entry.
    pub fn find(&self, line: LineAddr) -> Option<&FillEntry<T>> {
        self.entries.iter().find(|e| e.line == line)
    }

    /// CAM search, mutable (promotion, payload merging).
    pub fn find_mut(&mut self, line: LineAddr) -> Option<&mut FillEntry<T>> {
        self.entries.iter_mut().find(|e| e.line == line)
    }

    /// Marks the entry's data as arrived. Returns `false` when no entry
    /// matches (e.g. it was released on an L3 miss).
    pub fn set_ready(&mut self, line: LineAddr) -> bool {
        match self.find_mut(line) {
            Some(e) => {
                e.ready = true;
                true
            }
            None => false,
        }
    }

    /// Promotes a prefetch entry to demand class (late prefetch, §5.4).
    /// Returns `true` if an entry matched (whatever its class).
    pub fn promote(&mut self, line: LineAddr) -> bool {
        match self.find_mut(line) {
            Some(e) => {
                e.class = ReqClass::Demand;
                true
            }
            None => false,
        }
    }

    /// Releases a *not-ready* entry (the §5.4 L3-miss path: "the fill
    /// queue entry is released, and the L1/L2 miss request becomes an
    /// L1/L2/L3 miss request"). Returns the payload.
    pub fn release(&mut self, line: LineAddr) -> Option<FillEntry<T>> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.line == line && !e.ready)?;
        self.entries.remove(pos)
    }

    /// Pops the oldest *ready* entry for insertion into the cache array.
    ///
    /// Entries become ready out of order (an L3 hit returns long before a
    /// DRAM access), so insertion is oldest-ready-first rather than
    /// strict-FIFO — this avoids unrealistic head-of-line blocking while
    /// keeping allocation order FIFO as described in the paper.
    pub fn pop_ready(&mut self) -> Option<FillEntry<T>> {
        let pos = self.entries.iter().position(|e| e.ready)?;
        self.entries.remove(pos)
    }

    /// Peeks the oldest ready entry without removing it.
    pub fn peek_ready(&self) -> Option<&FillEntry<T>> {
        self.entries.iter().find(|e| e.ready)
    }

    /// Iterates over all pending entries (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &FillEntry<T>> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fq() -> FillQueue<u32> {
        FillQueue::new(4)
    }

    #[test]
    fn reserve_until_full() {
        let mut q = fq();
        for i in 0..4 {
            assert!(q.try_reserve(LineAddr(i), ReqClass::Demand, i as u32));
        }
        assert!(q.is_full());
        assert!(!q.try_reserve(LineAddr(9), ReqClass::Demand, 9));
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn ready_entries_pop_oldest_first() {
        let mut q = fq();
        q.try_reserve(LineAddr(1), ReqClass::Demand, 1);
        q.try_reserve(LineAddr(2), ReqClass::Demand, 2);
        q.try_reserve(LineAddr(3), ReqClass::Demand, 3);
        assert!(q.pop_ready().is_none());
        q.set_ready(LineAddr(3));
        q.set_ready(LineAddr(2));
        assert_eq!(q.pop_ready().unwrap().line, LineAddr(2));
        assert_eq!(q.pop_ready().unwrap().line, LineAddr(3));
        assert!(q.pop_ready().is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn promotion_changes_class() {
        let mut q = fq();
        q.try_reserve(LineAddr(7), ReqClass::L2Prefetch, 0);
        assert!(q.promote(LineAddr(7)));
        assert_eq!(q.find(LineAddr(7)).unwrap().class, ReqClass::Demand);
        assert!(!q.promote(LineAddr(8)));
    }

    #[test]
    fn release_only_not_ready() {
        let mut q = fq();
        q.try_reserve(LineAddr(5), ReqClass::Demand, 50);
        let e = q.release(LineAddr(5)).unwrap();
        assert_eq!(e.payload, 50);
        assert!(q.is_empty());
        // A ready entry cannot be released.
        q.try_reserve(LineAddr(6), ReqClass::Demand, 60);
        q.set_ready(LineAddr(6));
        assert!(q.release(LineAddr(6)).is_none());
    }

    #[test]
    fn cam_find() {
        let mut q = fq();
        q.try_reserve(LineAddr(11), ReqClass::L2Prefetch, 0);
        assert!(q.find(LineAddr(11)).is_some());
        assert!(q.find(LineAddr(12)).is_none());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        FillQueue::<()>::new(0);
    }
}
