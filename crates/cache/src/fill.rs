//! Fill queues with associative search (§5.4).
//!
//! The baseline has no L2/L3 MSHRs: "Instead, we add associative search
//! capability to the fill queues. A fill queue is a FIFO holding the
//! blocks that are to be inserted in the cache. An entry is allocated in
//! the fill queue when a miss request is issued to the next cache level
//! ... a request is not issued until there is a free entry."
//!
//! Late prefetches: "When a demand miss hits in a fill queue and the block
//! in the fill queue was prefetched, the miss request is dropped and the
//! block in the fill queue is promoted from prefetch to demand miss."
//!
//! The queue is CAM-searched on the simulator's hot path (every L2 miss
//! and every prefetch-redundancy check), so entries live in a fixed slab
//! with a [`LineIndex`] mapping line → slot: searches are O(1) instead
//! of a linear scan, FIFO order is kept in a separate ring of slot ids,
//! and a ready counter lets the per-cycle drain bail out in O(1) when no
//! entry is ready. A line can appear at most once per queue — all call
//! sites merge into the existing entry before reserving, matching the
//! hardware, and `try_reserve` debug-asserts it.

use crate::line_index::LineIndex;
use bosim_types::{LineAddr, ReqClass};
use std::collections::VecDeque;

/// One fill queue entry. `T` is simulator-defined payload (requester
/// bookkeeping: which levels need the block, which loads wait on it).
#[derive(Debug, Clone)]
pub struct FillEntry<T> {
    /// The block's line address.
    pub line: LineAddr,
    /// Data has arrived and the entry is ready for cache insertion.
    /// Private so the queue's ready count stays exact; flip it with
    /// [`FillQueue::set_ready`] and read it with [`is_ready`](Self::is_ready).
    ready: bool,
    /// Demand/prefetch class; promotion flips prefetch → demand.
    pub class: ReqClass,
    /// Caller payload.
    pub payload: T,
}

impl<T> FillEntry<T> {
    /// Has the entry's data arrived?
    pub fn is_ready(&self) -> bool {
        self.ready
    }
}

/// A bounded FIFO of pending fills with CAM (associative) search.
#[derive(Debug)]
pub struct FillQueue<T> {
    cap: usize,
    /// Entry slab; slot ids are stable for an entry's lifetime.
    slots: Vec<Option<FillEntry<T>>>,
    /// Allocation order (oldest first), as slot ids.
    order: VecDeque<u32>,
    /// Free slot ids.
    free: Vec<u32>,
    /// line → slot id (unused in linear mode).
    index: LineIndex,
    /// Number of ready entries (drain fast path).
    ready: usize,
    /// Linear-scan mode: CAM searches walk the FIFO like the original
    /// hardware-faithful model. The throughput harness uses this as the
    /// naive baseline; results are identical, only speed differs.
    linear: bool,
}

impl<T> FillQueue<T> {
    /// Creates a fill queue of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        Self::with_mode(cap, false)
    }

    /// Creates a fill queue whose CAM searches scan linearly (the naive
    /// baseline the throughput harness measures against).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new_linear(cap: usize) -> Self {
        Self::with_mode(cap, true)
    }

    fn with_mode(cap: usize, linear: bool) -> Self {
        assert!(cap > 0, "fill queue needs capacity");
        FillQueue {
            cap,
            slots: (0..cap).map(|_| None).collect(),
            order: VecDeque::with_capacity(cap),
            free: (0..cap as u32).rev().collect(),
            index: LineIndex::with_capacity(cap),
            ready: 0,
            linear,
        }
    }

    /// Finds the slot holding `line`, by index or by linear scan.
    #[inline]
    fn slot_of(&self, line: LineAddr) -> Option<u32> {
        if self.linear {
            self.order
                .iter()
                .copied()
                // bosim-lint: allow(P002, slots named by `order` are occupied by construction)
                .find(|&s| self.slots[s as usize].as_ref().expect("ordered").line == line)
        } else {
            self.index.get(line)
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// True when no free entry remains (requests must wait, §5.4).
    pub fn is_full(&self) -> bool {
        self.order.len() >= self.cap
    }

    /// True when at least one entry is ready for insertion (O(1)).
    pub fn has_ready(&self) -> bool {
        self.ready > 0
    }

    /// Reserves an entry at the tail. Returns `false` (and does nothing)
    /// when the queue is full.
    ///
    /// Debug-asserts that `line` is not already pending: callers merge
    /// into the existing entry first (see the module docs).
    pub fn try_reserve(&mut self, line: LineAddr, class: ReqClass, payload: T) -> bool {
        if self.is_full() {
            return false;
        }
        debug_assert!(
            self.slot_of(line).is_none(),
            "line already pending: merge before reserving"
        );
        let slot = self.free.pop().expect("not full ⇒ a slot is free"); // bosim-lint: allow(P002, guarded by the is_full check above)
        self.slots[slot as usize] = Some(FillEntry {
            line,
            ready: false,
            class,
            payload,
        });
        self.order.push_back(slot);
        if !self.linear {
            self.index.insert(line, slot);
        }
        true
    }

    /// CAM search for a pending entry.
    #[inline]
    pub fn find(&self, line: LineAddr) -> Option<&FillEntry<T>> {
        let slot = self.slot_of(line)?;
        self.slots[slot as usize].as_ref()
    }

    /// CAM search, mutable (promotion, payload merging).
    #[inline]
    pub fn find_mut(&mut self, line: LineAddr) -> Option<&mut FillEntry<T>> {
        let slot = self.slot_of(line)?;
        self.slots[slot as usize].as_mut()
    }

    /// Marks the entry's data as arrived. Returns `false` when no entry
    /// matches (e.g. it was released on an L3 miss).
    pub fn set_ready(&mut self, line: LineAddr) -> bool {
        let Some(slot) = self.slot_of(line) else {
            return false;
        };
        let e = self.slots[slot as usize].as_mut().expect("indexed slot"); // bosim-lint: allow(P002, slot_of returns only occupied slots)
        if !e.ready {
            e.ready = true;
            self.ready += 1;
        }
        true
    }

    /// Promotes a prefetch entry to demand class (late prefetch, §5.4).
    /// Returns `true` if an entry matched (whatever its class).
    pub fn promote(&mut self, line: LineAddr) -> bool {
        match self.find_mut(line) {
            Some(e) => {
                e.class = ReqClass::Demand;
                true
            }
            None => false,
        }
    }

    /// Removes the entry in `slot`, fixing up order, index and counters.
    fn take_slot(&mut self, slot: u32) -> FillEntry<T> {
        let e = self.slots[slot as usize].take().expect("slot occupied"); // bosim-lint: allow(P002, take_slot is called only with occupied slots)
        let pos = self
            .order
            .iter()
            .position(|&s| s == slot)
            .expect("slot ordered"); // bosim-lint: allow(P002, every occupied slot is listed in `order`)
        self.order.remove(pos);
        if !self.linear {
            self.index.remove(e.line);
        }
        self.free.push(slot);
        if e.ready {
            self.ready -= 1;
        }
        e
    }

    /// Releases a *not-ready* entry (the §5.4 L3-miss path: "the fill
    /// queue entry is released, and the L1/L2 miss request becomes an
    /// L1/L2/L3 miss request"). Returns the payload.
    pub fn release(&mut self, line: LineAddr) -> Option<FillEntry<T>> {
        let slot = self.slot_of(line)?;
        // bosim-lint: allow(P002, slot_of returns only occupied slots)
        if self.slots[slot as usize].as_ref().expect("indexed").ready {
            return None;
        }
        Some(self.take_slot(slot))
    }

    /// Pops the oldest *ready* entry for insertion into the cache array.
    ///
    /// Entries become ready out of order (an L3 hit returns long before a
    /// DRAM access), so insertion is oldest-ready-first rather than
    /// strict-FIFO — this avoids unrealistic head-of-line blocking while
    /// keeping allocation order FIFO as described in the paper.
    pub fn pop_ready(&mut self) -> Option<FillEntry<T>> {
        if self.linear {
            // Naive baseline: full scan, no ready-count fast path.
            let slot = self
                .order
                .iter()
                .copied()
                .find(|&s| self.slots[s as usize].as_ref().expect("ordered").ready)?; // bosim-lint: allow(P002, slots named by `order` are occupied by construction)
            return Some(self.take_slot(slot));
        }
        if self.ready == 0 {
            return None;
        }
        let slot = *self
            .order
            .iter()
            .find(|&&s| self.slots[s as usize].as_ref().expect("ordered").ready) // bosim-lint: allow(P002, slots named by `order` are occupied by construction)
            .expect("ready count > 0"); // bosim-lint: allow(P002, ready counter is non-zero, checked above)
        Some(self.take_slot(slot))
    }

    /// Peeks the oldest ready entry without removing it.
    pub fn peek_ready(&self) -> Option<&FillEntry<T>> {
        if !self.linear && self.ready == 0 {
            return None;
        }
        self.iter().find(|e| e.ready)
    }

    /// Iterates over all pending entries (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &FillEntry<T>> {
        self.order
            .iter()
            .map(|&s| self.slots[s as usize].as_ref().expect("ordered slot")) // bosim-lint: allow(P002, slots named by `order` are occupied by construction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fq() -> FillQueue<u32> {
        FillQueue::new(4)
    }

    #[test]
    fn reserve_until_full() {
        let mut q = fq();
        for i in 0..4 {
            assert!(q.try_reserve(LineAddr(i), ReqClass::Demand, i as u32));
        }
        assert!(q.is_full());
        assert!(!q.try_reserve(LineAddr(9), ReqClass::Demand, 9));
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn ready_entries_pop_oldest_first() {
        let mut q = fq();
        q.try_reserve(LineAddr(1), ReqClass::Demand, 1);
        q.try_reserve(LineAddr(2), ReqClass::Demand, 2);
        q.try_reserve(LineAddr(3), ReqClass::Demand, 3);
        assert!(!q.has_ready());
        assert!(q.pop_ready().is_none());
        q.set_ready(LineAddr(3));
        q.set_ready(LineAddr(2));
        assert!(q.has_ready());
        assert_eq!(q.pop_ready().unwrap().line, LineAddr(2));
        assert_eq!(q.pop_ready().unwrap().line, LineAddr(3));
        assert!(q.pop_ready().is_none());
        assert!(!q.has_ready());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn promotion_changes_class() {
        let mut q = fq();
        q.try_reserve(LineAddr(7), ReqClass::L2Prefetch, 0);
        assert!(q.promote(LineAddr(7)));
        assert_eq!(q.find(LineAddr(7)).unwrap().class, ReqClass::Demand);
        assert!(!q.promote(LineAddr(8)));
    }

    #[test]
    fn release_only_not_ready() {
        let mut q = fq();
        q.try_reserve(LineAddr(5), ReqClass::Demand, 50);
        let e = q.release(LineAddr(5)).unwrap();
        assert_eq!(e.payload, 50);
        assert!(q.is_empty());
        // A ready entry cannot be released.
        q.try_reserve(LineAddr(6), ReqClass::Demand, 60);
        q.set_ready(LineAddr(6));
        assert!(q.release(LineAddr(6)).is_none());
    }

    #[test]
    fn cam_find() {
        let mut q = fq();
        q.try_reserve(LineAddr(11), ReqClass::L2Prefetch, 0);
        assert!(q.find(LineAddr(11)).is_some());
        assert!(q.find(LineAddr(12)).is_none());
    }

    #[test]
    fn slots_recycle_without_losing_fifo_order() {
        let mut q = fq();
        // Fill, drain from the middle, refill: order and index must stay
        // coherent through slot reuse.
        for i in 0..4u64 {
            q.try_reserve(LineAddr(i), ReqClass::Demand, i as u32);
        }
        q.set_ready(LineAddr(1));
        assert_eq!(q.pop_ready().unwrap().payload, 1);
        assert!(q.release(LineAddr(2)).is_some());
        q.try_reserve(LineAddr(10), ReqClass::Demand, 10);
        q.try_reserve(LineAddr(11), ReqClass::Demand, 11);
        assert!(q.is_full());
        let lines: Vec<u64> = q.iter().map(|e| e.line.0).collect();
        assert_eq!(lines, vec![0, 3, 10, 11], "oldest-first order preserved");
        for &l in &[0u64, 3, 10, 11] {
            assert!(q.find(LineAddr(l)).is_some());
        }
        q.set_ready(LineAddr(3));
        q.set_ready(LineAddr(11));
        assert_eq!(q.pop_ready().unwrap().line, LineAddr(3));
        assert_eq!(q.pop_ready().unwrap().line, LineAddr(11));
        assert!(q.pop_ready().is_none());
    }

    #[test]
    fn set_ready_is_idempotent_for_the_ready_count() {
        let mut q = fq();
        q.try_reserve(LineAddr(1), ReqClass::Demand, 0);
        assert!(q.set_ready(LineAddr(1)));
        assert!(q.set_ready(LineAddr(1)));
        assert!(q.pop_ready().is_some());
        assert!(!q.has_ready());
        assert!(q.pop_ready().is_none());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        FillQueue::<()>::new(0);
    }
}
