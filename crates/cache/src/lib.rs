//! Cache structures for the `bosim` simulator.
//!
//! Reproduces the cache machinery of the paper's baseline (§5):
//!
//! * [`CacheArray`] — set-associative arrays with per-line prefetch bits
//!   (§5.6),
//! * replacement policies ([`policy`]): LRU, BIP, DIP, DRRIP and the
//!   baseline L3 policy **5P** with proportional counters and set
//!   sampling (§5.2),
//! * [`FillQueue`] — MSHR-less miss handling with associative search and
//!   late-prefetch promotion (§5.4),
//! * [`PrefetchQueue`] — the 8-entry lowest-priority L2 prefetch queue
//!   with oldest-drop (§5.4),
//! * [`MshrFile`] — the DL1's 32-entry MSHR file (Table 1),
//! * [`LineIndex`] — the small open-addressed line→slot index backing
//!   the queues' O(1) CAM searches (both queues also offer a
//!   `new_linear` constructor reproducing the naive scan, used as the
//!   throughput harness's baseline).
//!
//! # Examples
//!
//! ```
//! use bosim_cache::{CacheArray, policy::{PolicyKind, InsertCtx}};
//! use bosim_types::{CoreId, LineAddr};
//!
//! let mut l2 = CacheArray::new(512 << 10, 8, PolicyKind::Lru, 1, 42);
//! let line = LineAddr(0x1234);
//! assert!(l2.access(line, false).is_none()); // miss
//! l2.insert(line, true, false, InsertCtx { demand: false, core: CoreId(0) });
//! let hit = l2.access(line, false).expect("resident now");
//! assert!(hit.was_prefetch); // prefetched hit: triggers the L2 prefetcher
//! ```

#![warn(missing_docs)]

mod array;
mod fill;
mod line_index;
pub mod policy;
mod queues;

pub use array::{CacheArray, Evicted, HitInfo};
pub use fill::{FillEntry, FillQueue};
pub use line_index::LineIndex;
pub use queues::{MshrEntry, MshrFile, PrefetchQueue};
