//! Set-associative cache arrays with prefetch bits.
//!
//! Each L2 entry carries a *prefetch bit* (§5.6): set when a prefetched
//! line is inserted, reset whenever the line is requested by the level
//! above. "Prefetched hits" (hit with the prefetch bit set) trigger the
//! L2 prefetcher exactly like misses do.

use crate::policy::{InsertCtx, PolicyKind, ReplacementPolicy};
use bosim_types::LineAddr;

/// A block evicted by an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line.
    pub line: LineAddr,
    /// Whether it was dirty (must be written back).
    pub dirty: bool,
    /// Whether its prefetch bit was still set — the line was brought in
    /// by a prefetch and evicted without ever serving a demand request
    /// (an *unused* prefetch, counted by the usefulness telemetry).
    pub prefetch: bool,
}

/// Result of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitInfo {
    /// The way that hit.
    pub way: usize,
    /// State of the prefetch bit *before* this access cleared it.
    pub was_prefetch: bool,
}

#[derive(Debug, Clone, Copy)]
struct LineMeta {
    tag: u64,
    valid: bool,
    dirty: bool,
    prefetch: bool,
}

const INVALID: LineMeta = LineMeta {
    tag: 0,
    valid: false,
    dirty: false,
    prefetch: false,
};

/// A set-associative cache array with pluggable replacement.
///
/// The array stores tags and status bits only (trace-driven timing
/// simulation carries no data). Statistics are kept by the caller.
#[derive(Debug)]
pub struct CacheArray {
    sets: usize,
    ways: usize,
    meta: Vec<LineMeta>,
    repl_state: Vec<u8>,
    policy: Box<dyn ReplacementPolicy>,
}

impl CacheArray {
    /// Builds a cache of `size_bytes` capacity with `ways` ways of 64-byte
    /// lines and the given replacement policy.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes / (64 * ways)` is a power of two of at
    /// least one set.
    pub fn new(
        size_bytes: u64,
        ways: usize,
        policy: PolicyKind,
        num_cores: usize,
        seed: u64,
    ) -> Self {
        assert!(ways >= 1);
        let sets = (size_bytes / (64 * ways as u64)) as usize;
        assert!(sets >= 1, "cache too small");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let n = sets * ways;
        let mut repl_state = vec![0u8; n];
        // Initialise LRU ages to a valid permutation per set.
        for set in 0..sets {
            for w in 0..ways {
                repl_state[set * ways + w] = w as u8;
            }
        }
        CacheArray {
            sets,
            ways,
            meta: vec![INVALID; n],
            repl_state,
            policy: policy.build(num_cores, seed),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The set index for a line.
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, line: LineAddr) -> u64 {
        line.0 >> self.sets.trailing_zeros()
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_of(line);
        let tag = self.tag_of(line);
        (0..self.ways)
            .find(|&w| self.meta[self.idx(set, w)].valid && self.meta[self.idx(set, w)].tag == tag)
    }

    /// Pure lookup without any state change (used for the mandatory tag
    /// check before inserting a prefetched block, §5.4).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Performs an access. On a hit, moves the block to MRU, reports and
    /// clears the prefetch bit, and optionally marks it dirty.
    ///
    /// Returns `None` on a miss (the caller issues a fill).
    pub fn access(&mut self, line: LineAddr, write: bool) -> Option<HitInfo> {
        let way = self.find(line)?;
        let set = self.set_of(line);
        let i = self.idx(set, way);
        let was_prefetch = self.meta[i].prefetch;
        self.meta[i].prefetch = false;
        if write {
            self.meta[i].dirty = true;
        }
        let base = set * self.ways;
        self.policy
            .on_hit(set, &mut self.repl_state[base..base + self.ways], way);
        Some(HitInfo { way, was_prefetch })
    }

    /// Counts the resident lines whose prefetch bit is still set —
    /// prefetched blocks that have not yet served a demand request. A
    /// pure scan of the tag/status store (no replacement or prefetch
    /// state changes), sampled by the observability layer at epoch
    /// boundaries as a cache-pollution gauge.
    pub fn prefetched_lines(&self) -> u64 {
        self.meta.iter().filter(|m| m.valid && m.prefetch).count() as u64
    }

    /// Re-reads the prefetch bit of a resident line without touching
    /// replacement state (used by prefetchers observing L2 state).
    pub fn prefetch_bit(&self, line: LineAddr) -> Option<bool> {
        self.find(line).map(|w| {
            let set = self.set_of(line);
            self.meta[self.idx(set, w)].prefetch
        })
    }

    /// Inserts a fetched block. `prefetched` sets the prefetch bit; `ctx`
    /// feeds the replacement policy. Returns the evicted block, if any.
    ///
    /// The caller must guarantee the line is not already present (§5.4:
    /// "we must check the cache tags to make sure that the block is not
    /// already in the cache ... Blocks must not be duplicated").
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is already present.
    pub fn insert(
        &mut self,
        line: LineAddr,
        prefetched: bool,
        dirty: bool,
        ctx: InsertCtx,
    ) -> Option<Evicted> {
        debug_assert!(!self.contains(line), "duplicate insertion of {line}");
        let set = self.set_of(line);
        let base = set * self.ways;
        // Prefer an invalid way; otherwise ask the policy for a victim.
        let (way, evicted) = match (0..self.ways).find(|&w| !self.meta[self.idx(set, w)].valid) {
            Some(w) => (w, None),
            None => {
                let w = self
                    .policy
                    .victim(set, &mut self.repl_state[base..base + self.ways]);
                let m = self.meta[self.idx(set, w)];
                let victim_line = LineAddr((m.tag << self.sets.trailing_zeros()) | set as u64);
                (
                    w,
                    Some(Evicted {
                        line: victim_line,
                        dirty: m.dirty,
                        prefetch: m.prefetch,
                    }),
                )
            }
        };
        let i = self.idx(set, way);
        self.meta[i] = LineMeta {
            tag: self.tag_of(line),
            valid: true,
            dirty,
            prefetch: prefetched,
        };
        self.policy
            .on_insert(set, &mut self.repl_state[base..base + self.ways], way, ctx);
        evicted
    }

    /// Marks a resident line dirty (writeback arriving from above).
    /// Returns false when the line is not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        match self.find(line) {
            Some(w) => {
                let set = self.set_of(line);
                let i = self.idx(set, w);
                self.meta[i].dirty = true;
                true
            }
            None => false,
        }
    }

    /// Invalidates a line if present; returns its dirtiness.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let w = self.find(line)?;
        let set = self.set_of(line);
        let i = self.idx(set, w);
        let dirty = self.meta[i].dirty;
        self.meta[i] = INVALID;
        Some(dirty)
    }

    /// Number of valid lines currently resident (O(n), for tests/stats).
    pub fn occupancy(&self) -> usize {
        self.meta.iter().filter(|m| m.valid).count()
    }

    /// The replacement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bosim_types::CoreId;
    use bosim_types::SplitMix64;

    fn ctx() -> InsertCtx {
        InsertCtx {
            demand: true,
            core: CoreId(0),
        }
    }

    fn small_cache() -> CacheArray {
        // 4 sets x 2 ways.
        CacheArray::new(512, 2, PolicyKind::Lru, 1, 1)
    }

    #[test]
    fn geometry() {
        let c = CacheArray::new(512 << 10, 8, PolicyKind::Lru, 1, 1);
        assert_eq!(c.sets(), 1024);
        assert_eq!(c.ways(), 8);
        let l3 = CacheArray::new(8 << 20, 16, PolicyKind::FiveP, 4, 1);
        assert_eq!(l3.sets(), 8192);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        let line = LineAddr(0x40);
        assert!(c.access(line, false).is_none());
        assert!(c.insert(line, false, false, ctx()).is_none());
        let hit = c.access(line, false).unwrap();
        assert!(!hit.was_prefetch);
    }

    #[test]
    fn prefetched_lines_gauge_tracks_bits_not_residency() {
        let mut c = small_cache();
        assert_eq!(c.prefetched_lines(), 0);
        c.insert(LineAddr(1), true, false, ctx());
        c.insert(LineAddr(2), true, false, ctx());
        c.insert(LineAddr(3), false, false, ctx());
        assert_eq!(c.prefetched_lines(), 2);
        // A demand hit clears the bit; the gauge follows.
        c.access(LineAddr(1), false);
        assert_eq!(c.prefetched_lines(), 1);
        assert_eq!(c.occupancy(), 3);
    }

    #[test]
    fn prefetch_bit_set_and_cleared_on_request() {
        let mut c = small_cache();
        let line = LineAddr(0x123);
        c.insert(line, true, false, ctx());
        assert_eq!(c.prefetch_bit(line), Some(true));
        let hit = c.access(line, false).unwrap();
        assert!(hit.was_prefetch, "first access sees the prefetch bit");
        let hit2 = c.access(line, false).unwrap();
        assert!(!hit2.was_prefetch, "the bit is reset by the request");
    }

    #[test]
    fn eviction_reconstructs_line_address() {
        let mut c = small_cache(); // 4 sets, 2 ways
                                   // Three lines mapping to set 0: 0, 4, 8 (line addr % 4 == 0).
        c.insert(LineAddr(0), false, true, ctx());
        c.insert(LineAddr(4), false, false, ctx());
        let ev = c.insert(LineAddr(8), false, false, ctx()).unwrap();
        assert_eq!(ev.line, LineAddr(0), "LRU victim is the oldest");
        assert!(ev.dirty);
        assert!(!ev.prefetch);
    }

    #[test]
    fn eviction_reports_unused_prefetch_bit() {
        let mut c = small_cache(); // 4 sets, 2 ways
        c.insert(LineAddr(0), true, false, ctx());
        c.insert(LineAddr(4), true, false, ctx());
        // Line 4's prefetch is *used* (demand hit clears the bit); line 0
        // is never touched. Overflowing the set evicts line 0 first.
        c.access(LineAddr(4), false);
        let ev = c.insert(LineAddr(8), false, false, ctx()).unwrap();
        assert_eq!(ev.line, LineAddr(0));
        assert!(ev.prefetch, "evicted without a demand hit: still marked");
        let ev = c.insert(LineAddr(12), false, false, ctx()).unwrap();
        assert_eq!(ev.line, LineAddr(4));
        assert!(!ev.prefetch, "used prefetch evicts with the bit clear");
    }

    #[test]
    fn hit_refreshes_lru() {
        let mut c = small_cache();
        c.insert(LineAddr(0), false, false, ctx());
        c.insert(LineAddr(4), false, false, ctx());
        c.access(LineAddr(0), false); // refresh 0
        let ev = c.insert(LineAddr(8), false, false, ctx()).unwrap();
        assert_eq!(ev.line, LineAddr(4));
    }

    #[test]
    fn write_marks_dirty() {
        let mut c = small_cache();
        c.insert(LineAddr(0), false, false, ctx());
        c.access(LineAddr(0), true);
        c.insert(LineAddr(4), false, false, ctx());
        let ev = c.insert(LineAddr(8), false, false, ctx()).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small_cache();
        c.insert(LineAddr(0), false, true, ctx());
        assert_eq!(c.invalidate(LineAddr(0)), Some(true));
        assert!(!c.contains(LineAddr(0)));
        assert_eq!(c.invalidate(LineAddr(0)), None);
    }

    /// No duplicate lines, occupancy bounded by capacity, and every
    /// line inserted is either resident or was evicted exactly once.
    /// (Deterministic pseudo-random workloads; formerly a proptest.)
    #[test]
    fn prop_no_duplicates_and_bounded() {
        let mut rng = SplitMix64::new(0xA11CE);
        for case in 0..64u64 {
            let mut c = CacheArray::new(1024, 2, PolicyKind::Lru, 1, 7); // 8 sets x 2
            let mut resident: std::collections::HashSet<u64> = Default::default();
            for _ in 0..(case % 300) + 1 {
                let line = rng.next_u64() % 64;
                let l = LineAddr(line);
                if c.access(l, false).is_none() {
                    let ev = c.insert(
                        l,
                        false,
                        false,
                        InsertCtx {
                            demand: true,
                            core: CoreId(0),
                        },
                    );
                    if let Some(e) = ev {
                        assert!(
                            resident.remove(&e.line.0),
                            "evicted non-resident {:?}",
                            e.line
                        );
                    }
                    assert!(resident.insert(line));
                } else {
                    assert!(resident.contains(&line));
                }
                assert!(c.occupancy() <= 16);
                assert_eq!(c.occupancy(), resident.len());
            }
        }
    }

    /// The same workload under any policy keeps the "no duplicates"
    /// invariant (the policies differ only in *which* line they evict).
    #[test]
    fn prop_all_policies_keep_invariants() {
        let mut rng = SplitMix64::new(0xBEEF);
        for (pi, kind) in [
            PolicyKind::Lru,
            PolicyKind::Bip,
            PolicyKind::Dip,
            PolicyKind::Drrip,
            PolicyKind::FiveP,
        ]
        .into_iter()
        .enumerate()
        {
            for case in 0..24u64 {
                let mut c = CacheArray::new(2048, 4, kind, 4, 11); // 8 sets x 4
                for _ in 0..(case * 7 + pi as u64) % 200 + 1 {
                    let line = rng.next_u64() % 128;
                    let l = LineAddr(line);
                    if c.access(l, false).is_none() {
                        c.insert(
                            l,
                            false,
                            false,
                            InsertCtx {
                                demand: true,
                                core: CoreId((line % 4) as u8),
                            },
                        );
                    }
                    assert!(c.contains(l), "line must be resident after fill");
                }
            }
        }
    }
}
