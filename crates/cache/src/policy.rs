//! Replacement policies: LRU, BIP, DIP, DRRIP and the paper's 5P.
//!
//! The baseline L3 policy is **5P** (§5.2): set sampling with five
//! insertion policies arbitrated by proportional counters. L2 uses plain
//! LRU ("we experimented with DIP/DRRIP at the L2 but did not observe any
//! significant performance gain over LRU"); DIP and DRRIP are provided for
//! the Figure 3 comparison.
//!
//! Per-line replacement state is a single byte owned by the policy:
//! an LRU age for the stack-based policies, an RRPV for DRRIP.

use bosim_types::{CoreId, ProportionalCounters, SplitMix64};

/// Context handed to the policy when a block is inserted.
#[derive(Debug, Clone, Copy)]
pub struct InsertCtx {
    /// True when the fill is a demand miss, false for prefetches.
    pub demand: bool,
    /// Core that caused the fill (L3 policies are core-aware).
    pub core: CoreId,
}

/// A cache replacement policy.
///
/// The cache array calls [`on_hit`](ReplacementPolicy::on_hit) on every
/// hit, [`victim`](ReplacementPolicy::victim) when it needs to evict from
/// a full set, and [`on_insert`](ReplacementPolicy::on_insert) after
/// placing a block into a way. `state` is the per-line replacement byte of
/// the set (one entry per way).
///
/// Policies must be [`Send`]: caches owned by a core migrate to worker
/// threads during parallel tick segments (they are still only ever
/// touched by one thread at a time).
pub trait ReplacementPolicy: std::fmt::Debug + Send {
    /// Updates state on a cache hit ("upon a cache hit, the hitting block
    /// is always moved to the MRU position").
    fn on_hit(&mut self, set_idx: usize, state: &mut [u8], way: usize);

    /// Chooses a victim way in a full set (may mutate state, e.g. DRRIP
    /// ages the set while searching).
    fn victim(&mut self, set_idx: usize, state: &mut [u8]) -> usize;

    /// Updates state after inserting a block into `way`.
    fn on_insert(&mut self, set_idx: usize, state: &mut [u8], way: usize, ctx: InsertCtx);

    /// Policy name for statistics output.
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------- LRU --

/// Moves `way` to the MRU position of an age-based stack.
fn lru_touch(state: &mut [u8], way: usize) {
    let old = state[way];
    for s in state.iter_mut() {
        if *s < old {
            *s += 1;
        }
    }
    state[way] = 0;
}

/// The LRU victim: the way with the maximal age.
fn lru_victim(state: &[u8]) -> usize {
    let mut best = 0;
    for (w, &s) in state.iter().enumerate() {
        if s > state[best] {
            best = w;
        }
    }
    best
}

/// Classical least-recently-used replacement with MRU insertion.
#[derive(Debug, Default)]
pub struct Lru;

impl ReplacementPolicy for Lru {
    fn on_hit(&mut self, _set: usize, state: &mut [u8], way: usize) {
        lru_touch(state, way);
    }

    fn victim(&mut self, _set: usize, state: &mut [u8]) -> usize {
        lru_victim(state)
    }

    fn on_insert(&mut self, _set: usize, state: &mut [u8], way: usize, _ctx: InsertCtx) {
        lru_touch(state, way);
    }

    fn name(&self) -> &'static str {
        "LRU"
    }
}

// ---------------------------------------------------------------- BIP --

/// Bimodal insertion (BIP): LRU insertion except a 1/32 chance of MRU
/// insertion (Qureshi et al., used as IP2 of 5P).
#[derive(Debug)]
pub struct Bip {
    rng: SplitMix64,
}

impl Bip {
    /// Creates a BIP policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Bip {
            rng: SplitMix64::new(seed),
        }
    }
}

impl ReplacementPolicy for Bip {
    fn on_hit(&mut self, _set: usize, state: &mut [u8], way: usize) {
        lru_touch(state, way);
    }

    fn victim(&mut self, _set: usize, state: &mut [u8]) -> usize {
        lru_victim(state)
    }

    fn on_insert(&mut self, _set: usize, state: &mut [u8], way: usize, _ctx: InsertCtx) {
        if self.rng.chance(1, 32) {
            lru_touch(state, way); // MRU insertion
        }
        // Otherwise leave the block at the LRU position (victim's age).
    }

    fn name(&self) -> &'static str {
        "BIP"
    }
}

// ---------------------------------------------------------------- DIP --

/// Dynamic insertion policy: set-duels LRU against BIP with a PSEL
/// counter (Qureshi et al., ISCA 2007).
#[derive(Debug)]
pub struct Dip {
    rng: SplitMix64,
    psel: i32,
    psel_max: i32,
}

impl Dip {
    /// Creates a DIP policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Dip {
            rng: SplitMix64::new(seed),
            psel: 0,
            psel_max: 512,
        }
    }

    /// Leader-set mapping: one LRU leader and one BIP leader per 32 sets.
    fn leader(&self, set: usize) -> Option<bool> {
        match set % 32 {
            0 => Some(true),   // LRU leader
            16 => Some(false), // BIP leader
            _ => None,
        }
    }

    fn use_lru(&self, set: usize) -> bool {
        match self.leader(set) {
            Some(l) => l,
            None => self.psel <= 0,
        }
    }
}

impl ReplacementPolicy for Dip {
    fn on_hit(&mut self, _set: usize, state: &mut [u8], way: usize) {
        lru_touch(state, way);
    }

    fn victim(&mut self, _set: usize, state: &mut [u8]) -> usize {
        lru_victim(state)
    }

    fn on_insert(&mut self, set: usize, state: &mut [u8], way: usize, ctx: InsertCtx) {
        // A fill implies a miss: update PSEL on leader-set misses.
        if ctx.demand {
            match self.leader(set) {
                Some(true) => self.psel = (self.psel + 1).min(self.psel_max),
                Some(false) => self.psel = (self.psel - 1).max(-self.psel_max),
                None => {}
            }
        }
        if self.use_lru(set) || self.rng.chance(1, 32) {
            lru_touch(state, way);
        }
    }

    fn name(&self) -> &'static str {
        "DIP"
    }
}

// -------------------------------------------------------------- DRRIP --

const RRPV_MAX: u8 = 3;

/// Dynamic re-reference interval prediction (Jaleel et al., ISCA 2010):
/// set-duels SRRIP against BRRIP.
#[derive(Debug)]
pub struct Drrip {
    rng: SplitMix64,
    psel: i32,
    psel_max: i32,
}

impl Drrip {
    /// Creates a DRRIP policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Drrip {
            rng: SplitMix64::new(seed),
            psel: 0,
            psel_max: 512,
        }
    }

    fn leader(&self, set: usize) -> Option<bool> {
        match set % 32 {
            0 => Some(true),   // SRRIP leader
            16 => Some(false), // BRRIP leader
            _ => None,
        }
    }

    fn use_srrip(&self, set: usize) -> bool {
        match self.leader(set) {
            Some(l) => l,
            None => self.psel <= 0,
        }
    }
}

impl ReplacementPolicy for Drrip {
    fn on_hit(&mut self, _set: usize, state: &mut [u8], way: usize) {
        state[way] = 0;
    }

    fn victim(&mut self, _set: usize, state: &mut [u8]) -> usize {
        loop {
            for (w, &s) in state.iter().enumerate() {
                if s >= RRPV_MAX {
                    return w;
                }
            }
            for s in state.iter_mut() {
                *s += 1;
            }
        }
    }

    fn on_insert(&mut self, set: usize, state: &mut [u8], way: usize, ctx: InsertCtx) {
        if ctx.demand {
            match self.leader(set) {
                Some(true) => self.psel = (self.psel + 1).min(self.psel_max),
                Some(false) => self.psel = (self.psel - 1).max(-self.psel_max),
                None => {}
            }
        }
        // SRRIP leader/follower sets insert near-immediate; BRRIP sets
        // do so only with probability 1/32.
        let near = self.use_srrip(set) || self.rng.chance(1, 32);
        state[way] = if near { RRPV_MAX - 1 } else { RRPV_MAX };
    }

    fn name(&self) -> &'static str {
        "DRRIP"
    }
}

// ----------------------------------------------------------------- 5P --

/// The five insertion policies of 5P (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ip {
    /// IP1: MRU insertion (classical LRU).
    Mru,
    /// IP2: probabilistic LRU/MRU insertion (BIP).
    Bip,
    /// IP3: MRU if demand miss, otherwise LRU (prefetch-aware).
    DemandMru,
    /// IP4: MRU if fetched from a core with a low miss rate.
    LowMissMru,
    /// IP5: MRU if demand miss from a core with a low miss rate.
    DemandLowMissMru,
}

const IPS: [Ip; 5] = [
    Ip::Mru,
    Ip::Bip,
    Ip::DemandMru,
    Ip::LowMissMru,
    Ip::DemandLowMissMru,
];

/// Leader-set offsets within each 128-set constituency (one per IP).
const LEADER_OFFSETS: [usize; 5] = [0, 25, 50, 75, 100];

/// Number of sets per constituency (§5.2: "a constituency size of 128
/// sets").
pub const FIVEP_CONSTITUENCY: usize = 128;

/// The paper's 5P L3 replacement policy (§5.2): five insertion policies,
/// set sampling, 12-bit proportional counters choosing the follower
/// policy, plus per-core miss-rate proportional counters for the
/// core-aware insertion policies IP4/IP5.
#[derive(Debug)]
pub struct FiveP {
    rng: SplitMix64,
    /// One 12-bit proportional counter per insertion policy.
    policy_counters: ProportionalCounters,
    /// One 12-bit proportional counter per core (miss-rate estimation).
    core_counters: ProportionalCounters,
}

impl FiveP {
    /// Creates a 5P policy for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores == 0`.
    pub fn new(num_cores: usize, seed: u64) -> Self {
        FiveP {
            rng: SplitMix64::new(seed),
            policy_counters: ProportionalCounters::new(5, 12),
            core_counters: ProportionalCounters::new(num_cores.max(1), 12),
        }
    }

    /// Which IP leads this set, if it is a leader set.
    fn leader(&self, set: usize) -> Option<usize> {
        let offset = set % FIVEP_CONSTITUENCY;
        LEADER_OFFSETS.iter().position(|&o| o == offset)
    }

    /// The insertion policy governing this set.
    fn policy_for(&self, set: usize) -> Ip {
        match self.leader(set) {
            Some(i) => IPS[i],
            // Followers use the policy with the lowest demand-miss count.
            None => IPS[self.policy_counters.argmin()],
        }
    }
}

impl ReplacementPolicy for FiveP {
    fn on_hit(&mut self, _set: usize, state: &mut [u8], way: usize) {
        lru_touch(state, way);
    }

    fn victim(&mut self, _set: usize, state: &mut [u8]) -> usize {
        lru_victim(state)
    }

    fn on_insert(&mut self, set: usize, state: &mut [u8], way: usize, ctx: InsertCtx) {
        // Track per-core fill rates for the core-aware policies.
        if ctx.core.index() < self.core_counters.len() {
            self.core_counters.increment(ctx.core.index());
        }
        // Demand-miss insertions into leader sets drive policy selection.
        if ctx.demand {
            if let Some(i) = self.leader(set) {
                self.policy_counters.increment(i);
            }
        }
        let low_miss = ctx.core.index() < self.core_counters.len()
            && self.core_counters.is_low(ctx.core.index());
        let mru = match self.policy_for(set) {
            Ip::Mru => true,
            Ip::Bip => self.rng.chance(1, 32),
            Ip::DemandMru => ctx.demand,
            Ip::LowMissMru => low_miss,
            Ip::DemandLowMissMru => ctx.demand && low_miss,
        };
        if mru {
            lru_touch(state, way);
        }
    }

    fn name(&self) -> &'static str {
        "5P"
    }
}

/// Which replacement policy a cache should use (configuration enum for
/// the Figure 3 experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Classical LRU.
    Lru,
    /// Bimodal insertion.
    Bip,
    /// Dynamic insertion (LRU/BIP dueling).
    Dip,
    /// Dynamic RRIP.
    Drrip,
    /// The paper's 5P policy.
    FiveP,
}

impl PolicyKind {
    /// Builds the policy object. `num_cores` is used by 5P only.
    pub fn build(self, num_cores: usize, seed: u64) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru),
            PolicyKind::Bip => Box::new(Bip::new(seed)),
            PolicyKind::Dip => Box::new(Dip::new(seed)),
            PolicyKind::Drrip => Box::new(Drrip::new(seed)),
            PolicyKind::FiveP => Box::new(FiveP::new(num_cores, seed)),
        }
    }

    /// Display label ("LRU", "DRRIP", "5P", ...).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Bip => "BIP",
            PolicyKind::Dip => "DIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::FiveP => "5P",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(demand: bool, core: u8) -> InsertCtx {
        InsertCtx {
            demand,
            core: CoreId(core),
        }
    }

    /// Fresh 4-way set state: ages 0..3 (way 0 is MRU).
    fn fresh_set() -> Vec<u8> {
        vec![0, 1, 2, 3]
    }

    #[test]
    fn lru_hit_moves_to_mru() {
        let mut p = Lru;
        let mut s = fresh_set();
        p.on_hit(0, &mut s, 3);
        assert_eq!(s, vec![1, 2, 3, 0]);
    }

    #[test]
    fn lru_victim_is_oldest() {
        let mut p = Lru;
        let mut s = vec![2, 0, 3, 1];
        assert_eq!(p.victim(0, &mut s), 2);
    }

    #[test]
    fn lru_ages_stay_a_permutation() {
        let mut p = Lru;
        let mut s = fresh_set();
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let w = rng.next_below(4) as usize;
            if rng.chance(1, 2) {
                p.on_hit(0, &mut s, w);
            } else {
                let v = p.victim(0, &mut s);
                p.on_insert(0, &mut s, v, ctx(true, 0));
            }
            let mut sorted = s.clone();
            sorted.sort();
            assert_eq!(sorted, vec![0, 1, 2, 3], "ages must stay a permutation");
        }
    }

    #[test]
    fn bip_mostly_inserts_at_lru() {
        let mut p = Bip::new(42);
        let mut mru_inserts = 0;
        for _ in 0..3200 {
            let mut s = fresh_set();
            // Insert into the LRU way (3).
            p.on_insert(0, &mut s, 3, ctx(true, 0));
            if s[3] == 0 {
                mru_inserts += 1;
            }
        }
        // Expect ~1/32 = 100 of 3200; allow generous slack.
        assert!((30..300).contains(&mru_inserts), "mru={mru_inserts}");
    }

    #[test]
    fn drrip_hit_resets_rrpv() {
        let mut p = Drrip::new(1);
        let mut s = vec![3, 2, 1, 0];
        p.on_hit(0, &mut s, 0);
        assert_eq!(s[0], 0);
    }

    #[test]
    fn drrip_victim_finds_or_creates_rrpv3() {
        let mut p = Drrip::new(1);
        let mut s = vec![0, 1, 2, 2];
        let v = p.victim(0, &mut s);
        // After aging, some way reached RRPV 3.
        assert_eq!(s[v], 3);
    }

    #[test]
    fn fivep_leader_sets_are_disjoint_and_periodic() {
        let p = FiveP::new(4, 7);
        let mut leaders = 0;
        for set in 0..FIVEP_CONSTITUENCY {
            if p.leader(set).is_some() {
                leaders += 1;
            }
        }
        assert_eq!(leaders, 5);
        assert_eq!(p.leader(0), Some(0));
        assert_eq!(p.leader(FIVEP_CONSTITUENCY + 25), Some(1));
    }

    #[test]
    fn fivep_ip3_leader_inserts_prefetch_at_lru() {
        let mut p = FiveP::new(4, 7);
        let ip3_set = LEADER_OFFSETS[2];
        let mut s = fresh_set();
        p.on_insert(ip3_set, &mut s, 3, ctx(false, 0)); // prefetch fill
        assert_eq!(s[3], 3, "prefetch inserted at LRU in IP3 leader");
        let mut s2 = fresh_set();
        p.on_insert(ip3_set, &mut s2, 3, ctx(true, 0)); // demand fill
        assert_eq!(s2[3], 0, "demand inserted at MRU in IP3 leader");
    }

    #[test]
    fn fivep_follower_uses_lowest_counter_policy() {
        let mut p = FiveP::new(4, 7);
        // Drive demand misses into the IP1 leader so IP1's counter rises;
        // followers should then avoid IP1... i.e. argmin is another IP.
        let ip1_set = LEADER_OFFSETS[0];
        for _ in 0..50 {
            let mut s = fresh_set();
            p.on_insert(ip1_set, &mut s, 3, ctx(true, 0));
        }
        assert_ne!(p.policy_counters.argmin(), 0);
    }

    #[test]
    fn fivep_core_aware_low_miss_rate() {
        let mut p = FiveP::new(4, 7);
        // Core 0 fills a lot, core 1 rarely: core 1 is "low miss".
        for _ in 0..200 {
            let mut s = fresh_set();
            p.on_insert(7, &mut s, 3, ctx(true, 0));
        }
        for _ in 0..10 {
            let mut s = fresh_set();
            p.on_insert(7, &mut s, 3, ctx(true, 1));
        }
        assert!(p.core_counters.is_low(1));
        assert!(!p.core_counters.is_low(0));
        // IP4 leader: low-miss core inserts at MRU, high-miss at LRU.
        let ip4_set = LEADER_OFFSETS[3];
        let mut s = fresh_set();
        p.on_insert(ip4_set, &mut s, 3, ctx(false, 1));
        assert_eq!(s[3], 0);
        let mut s = fresh_set();
        p.on_insert(ip4_set, &mut s, 3, ctx(false, 0));
        assert_eq!(s[3], 3);
    }

    #[test]
    fn policy_kind_builds_all() {
        for k in [
            PolicyKind::Lru,
            PolicyKind::Bip,
            PolicyKind::Dip,
            PolicyKind::Drrip,
            PolicyKind::FiveP,
        ] {
            let p = k.build(4, 3);
            assert_eq!(p.name(), k.label());
        }
    }
}
