//! The L2 prefetch queue and the DL1 MSHR file.

use crate::line_index::LineIndex;
use bosim_types::{Cycle, LineAddr};
use std::collections::VecDeque;

/// The L2 prefetch queue (§5.4): "L2 prefetch requests have the lowest
/// priority for accessing the L3 cache. Prefetch requests wait in an
/// 8-entry prefetch queue until they can access the L3 cache. When a
/// prefetch request is inserted into the queue, and if the queue is full,
/// the oldest request is cancelled."
///
/// The CAM search runs once per prefetch candidate (a hot-path
/// redundancy check), so membership is tracked in a [`LineIndex`]
/// alongside the FIFO: `contains` is O(1), and the scan cost is paid
/// only on actual removals.
#[derive(Debug)]
pub struct PrefetchQueue {
    cap: usize,
    entries: VecDeque<LineAddr>,
    index: LineIndex,
    /// Linear-scan mode (the throughput harness's naive baseline).
    linear: bool,
    /// Number of requests cancelled by overflow (statistics).
    pub cancelled: u64,
}

impl PrefetchQueue {
    /// Creates a prefetch queue (the paper uses 8 entries).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        Self::with_mode(cap, false)
    }

    /// Creates a prefetch queue whose CAM searches scan linearly (the
    /// naive baseline the throughput harness measures against).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new_linear(cap: usize) -> Self {
        Self::with_mode(cap, true)
    }

    fn with_mode(cap: usize, linear: bool) -> Self {
        assert!(cap > 0);
        PrefetchQueue {
            cap,
            entries: VecDeque::with_capacity(cap),
            index: LineIndex::with_capacity(cap),
            linear,
            cancelled: 0,
        }
    }

    /// Queue occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the queue holds no requests.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pushes a prefetch request; if the queue is full the *oldest*
    /// request is cancelled. Duplicate requests are dropped (the queue is
    /// "associatively searched" before insertion, §6.3 fn. 13).
    pub fn push(&mut self, line: LineAddr) {
        if self.contains(line) {
            return;
        }
        if self.entries.len() >= self.cap {
            let oldest = self.entries.pop_front().expect("full ⇒ nonempty"); // bosim-lint: allow(P002, full queue is non-empty)
            if !self.linear {
                self.index.remove(oldest);
            }
            self.cancelled += 1;
        }
        self.entries.push_back(line);
        if !self.linear {
            self.index.insert(line, 0);
        }
    }

    /// Pops the oldest pending prefetch request.
    pub fn pop(&mut self) -> Option<LineAddr> {
        let line = self.entries.pop_front()?;
        if !self.linear {
            self.index.remove(line);
        }
        Some(line)
    }

    /// CAM search.
    pub fn contains(&self, line: LineAddr) -> bool {
        if self.linear {
            self.entries.contains(&line)
        } else {
            self.index.contains(line)
        }
    }

    /// Removes a matching request (e.g. the line just got demanded).
    pub fn remove(&mut self, line: LineAddr) -> bool {
        if self.linear {
            match self.entries.iter().position(|&l| l == line) {
                Some(pos) => {
                    self.entries.remove(pos);
                    true
                }
                None => false,
            }
        } else {
            if self.index.remove(line).is_none() {
                return false;
            }
            let pos = self
                .entries
                .iter()
                .position(|&l| l == line)
                .expect("indexed line is queued"); // bosim-lint: allow(P002, the index maps only queued lines)
            self.entries.remove(pos);
            true
        }
    }
}

/// One DL1 MSHR entry: a pending block request with the cycle it was
/// allocated and whether any retired-load consumer is waiting.
#[derive(Debug, Clone)]
pub struct MshrEntry {
    /// Pending block.
    pub line: LineAddr,
    /// Allocation cycle (latency accounting).
    pub alloc_cycle: Cycle,
    /// ROB indices of loads waiting on this block (simulator-managed).
    pub waiters: Vec<u64>,
    /// True when the entry was allocated by a prefetch.
    pub prefetch: bool,
    /// True when a committed store is waiting to write the block
    /// (the fill must be inserted dirty).
    pub store: bool,
}

/// The DL1 MSHR file (Table 1: "MSHR 32 DL1 block requests").
///
/// MSHRs are needed at the DL1 "for keeping track of loads/stores that
/// depend on a missing block and for preventing redundant miss requests"
/// (§5.4).
#[derive(Debug)]
pub struct MshrFile {
    cap: usize,
    entries: Vec<MshrEntry>,
}

impl MshrFile {
    /// Creates an MSHR file with `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        MshrFile {
            cap,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entry is allocated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no new block request can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.cap
    }

    /// Finds the pending entry for a block.
    pub fn find_mut(&mut self, line: LineAddr) -> Option<&mut MshrEntry> {
        self.entries.iter_mut().find(|e| e.line == line)
    }

    /// Finds the pending entry for a block (shared).
    pub fn find(&self, line: LineAddr) -> Option<&MshrEntry> {
        self.entries.iter().find(|e| e.line == line)
    }

    /// Allocates an entry; returns `false` when full or already pending
    /// (merge with [`Self::find_mut`] first).
    pub fn try_alloc(&mut self, line: LineAddr, cycle: Cycle, prefetch: bool) -> bool {
        if self.is_full() || self.find(line).is_some() {
            return false;
        }
        self.entries.push(MshrEntry {
            line,
            alloc_cycle: cycle,
            waiters: Vec::new(),
            prefetch,
            store: false,
        });
        true
    }

    /// Deallocates the entry when its block arrives, returning it.
    pub fn complete(&mut self, line: LineAddr) -> Option<MshrEntry> {
        let pos = self.entries.iter().position(|e| e.line == line)?;
        Some(self.entries.swap_remove(pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_queue_drops_oldest_on_overflow() {
        let mut q = PrefetchQueue::new(3);
        for i in 0..3 {
            q.push(LineAddr(i));
        }
        q.push(LineAddr(99));
        assert_eq!(q.cancelled, 1);
        assert_eq!(q.pop(), Some(LineAddr(1)), "oldest (0) was cancelled");
        assert!(q.contains(LineAddr(99)));
    }

    #[test]
    fn prefetch_queue_dedups() {
        let mut q = PrefetchQueue::new(4);
        q.push(LineAddr(5));
        q.push(LineAddr(5));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn prefetch_queue_remove() {
        let mut q = PrefetchQueue::new(4);
        q.push(LineAddr(5));
        assert!(q.remove(LineAddr(5)));
        assert!(!q.remove(LineAddr(5)));
        assert!(q.is_empty());
    }

    #[test]
    fn mshr_alloc_merge_complete() {
        let mut m = MshrFile::new(2);
        assert!(m.try_alloc(LineAddr(1), 10, false));
        assert!(!m.try_alloc(LineAddr(1), 11, false), "no duplicate entries");
        m.find_mut(LineAddr(1)).unwrap().waiters.push(42);
        assert!(m.try_alloc(LineAddr(2), 12, true));
        assert!(m.is_full());
        assert!(!m.try_alloc(LineAddr(3), 13, false));
        let e = m.complete(LineAddr(1)).unwrap();
        assert_eq!(e.waiters, vec![42]);
        assert_eq!(e.alloc_cycle, 10);
        assert_eq!(m.len(), 1);
        assert!(m.complete(LineAddr(1)).is_none());
    }
}
