//! Structured experiment output.
//!
//! An [`Experiment`](crate::Experiment) run produces a [`Report`]: the
//! full per-benchmark value grid with per-arm geometric means, renderable
//! as TSV + aligned text (the classic harness output) and as JSON for
//! downstream tooling. JSON files land in `target/reports/<name>.json`
//! by default; set `BOSIM_REPORT_DIR` to redirect them.

use bosim::SimResult;
use bosim_adapt::AdaptTelemetry;
use bosim_stats::{geometric_mean, Align, Json, Table};
use std::io;
use std::path::{Path, PathBuf};

/// Key statistics of one simulation run (one grid cell).
// bosim-lint: schema(run-summary)
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Benchmark name (e.g. `"433.milc-like"`).
    pub benchmark: String,
    /// Configuration label (e.g. `"4KB/1-core/BO"`).
    pub config: String,
    /// Instructions per cycle on core 0.
    pub ipc: f64,
    /// DRAM accesses per kilo-instruction (the Figure 13 metric).
    pub dram_per_ki: f64,
    /// L2 misses per kilo-instruction.
    pub l2_miss_per_ki: f64,
    /// Measured instructions.
    pub instructions: u64,
    /// Measured cycles.
    pub cycles: u64,
    /// L1D-site prefetches issued to the uncore (measured window).
    pub l1_prefetches: u64,
    /// L1D-site prefetches dropped on a TLB2 miss (measured window).
    pub l1_prefetch_tlb_drops: u64,
    /// L2-site prefetches issued to the L3 (measured window, core 0's
    /// L2 plus the other cores' — the uncore counter is machine-wide).
    pub l2_prefetches_issued: u64,
    /// Lines filled into the L2s still carrying prefetch class.
    pub l2_prefetch_fills: u64,
    /// L3-site prefetches issued to DRAM (measured window).
    pub l3_prefetches_issued: u64,
    /// Lines filled into the L3 still carrying the L3-prefetch class.
    pub l3_prefetch_fills: u64,
    /// Adaptive-control epoch telemetry (adaptive runs only).
    pub adapt: Option<AdaptTelemetry>,
}

impl From<&SimResult> for RunSummary {
    fn from(r: &SimResult) -> Self {
        let ki = if r.instructions == 0 {
            f64::NAN
        } else {
            r.instructions as f64 / 1000.0
        };
        RunSummary {
            benchmark: r.benchmark.clone(),
            config: r.config.clone(),
            ipc: r.ipc(),
            dram_per_ki: r.dram_accesses_per_ki(),
            l2_miss_per_ki: r.uncore.l2_misses as f64 / ki,
            instructions: r.instructions,
            cycles: r.cycles,
            l1_prefetches: r.core.l1_prefetches,
            l1_prefetch_tlb_drops: r.core.l1_prefetch_tlb_drops,
            l2_prefetches_issued: r.uncore.l2_prefetches_issued,
            l2_prefetch_fills: r.uncore.l2_prefetch_fills,
            l3_prefetches_issued: r.uncore.l3_prefetches_issued,
            l3_prefetch_fills: r.uncore.l3_prefetch_fills,
            adapt: r.adapt.clone(),
        }
    }
}

impl RunSummary {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj([
            ("benchmark", Json::from(self.benchmark.as_str())),
            ("config", Json::from(self.config.as_str())),
            ("ipc", Json::from(self.ipc)),
            ("dram_per_ki", Json::from(self.dram_per_ki)),
            ("l2_miss_per_ki", Json::from(self.l2_miss_per_ki)),
            ("instructions", Json::from(self.instructions)),
            ("cycles", Json::from(self.cycles)),
            ("l1_prefetches", Json::from(self.l1_prefetches)),
            (
                "l1_prefetch_tlb_drops",
                Json::from(self.l1_prefetch_tlb_drops),
            ),
            (
                "l2_prefetches_issued",
                Json::from(self.l2_prefetches_issued),
            ),
            ("l2_prefetch_fills", Json::from(self.l2_prefetch_fills)),
            (
                "l3_prefetches_issued",
                Json::from(self.l3_prefetches_issued),
            ),
            ("l3_prefetch_fills", Json::from(self.l3_prefetch_fills)),
            (
                "adapt",
                self.adapt
                    .as_ref()
                    .map(AdaptTelemetry::to_json)
                    .unwrap_or(Json::Null),
            ),
        ])
    }
}

/// One arm of a report: a configuration (possibly paired with a
/// baseline) evaluated over every benchmark.
#[derive(Debug, Clone)]
pub struct ArmReport {
    /// Series label shown in tables (e.g. `"4KB/1-core"` or `"D=5"`).
    pub series: String,
    /// Optional group label for pivoted GM tables (e.g. the machine
    /// configuration a variant belongs to).
    pub group: Option<String>,
    /// Subject configuration label.
    pub config: String,
    /// Baseline configuration label, when the arm reports speedups.
    pub baseline: Option<String>,
    /// One metric value per benchmark, in the report's benchmark order.
    pub values: Vec<f64>,
    /// Geometric mean of `values` (when meaningful for the metric).
    pub gm: Option<f64>,
    /// Per-benchmark subject-run statistics.
    pub runs: Vec<RunSummary>,
}

/// How a [`Report`] lays out its tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// Rows are benchmarks, columns are arms (Figures 2, 4–6, 12, 13).
    #[default]
    BenchRows,
    /// Rows are arms, columns are benchmarks (the Figure 8 sweep).
    ArmRows,
    /// Rows are arm groups, columns are series, cells are geometric
    /// means (Figures 7, 9–11 and the ablations).
    GmPivot,
}

/// A structured experiment result (see the [crate docs](crate)).
#[derive(Debug, Clone)]
pub struct Report {
    /// Machine-friendly experiment id (also the JSON file stem).
    pub name: String,
    /// Human-readable title, printed as the table heading.
    pub title: String,
    /// Metric label (e.g. `"IPC"`, `"speedup"`, `"dram_per_ki"`).
    pub metric: String,
    /// Benchmark short labels, defining the order of arm `values`.
    pub benchmarks: Vec<String>,
    /// The arms.
    pub arms: Vec<ArmReport>,
    /// Table layout.
    pub layout: Layout,
    /// Append/compute geometric-mean summaries.
    pub with_gm: bool,
    /// Decimal places in tables (JSON keeps full precision).
    pub decimals: usize,
}

impl Report {
    fn fmt_value(&self, v: f64) -> String {
        format!("{v:.prec$}", prec = self.decimals)
    }

    /// Renders the report as a table per its [`Layout`].
    pub fn table(&self) -> Table {
        match self.layout {
            Layout::BenchRows => self.bench_rows_table(),
            Layout::ArmRows => self.arm_rows_table(),
            Layout::GmPivot => self.gm_pivot_table(),
        }
    }

    fn bench_rows_table(&self) -> Table {
        let mut header = vec!["benchmark".to_string()];
        header.extend(self.arms.iter().map(|a| a.series.clone()));
        let mut t = Table::new(header);
        let mut aligns = vec![Align::Left];
        aligns.extend(std::iter::repeat_n(Align::Right, self.arms.len()));
        t.align(aligns);
        for (bi, b) in self.benchmarks.iter().enumerate() {
            let mut cells = vec![b.clone()];
            cells.extend(self.arms.iter().map(|a| self.fmt_value(a.values[bi])));
            t.row(cells);
        }
        if self.with_gm && !self.benchmarks.is_empty() {
            let mut cells = vec!["GM".to_string()];
            cells.extend(
                self.arms
                    .iter()
                    .map(|a| a.gm.map(|g| self.fmt_value(g)).unwrap_or_default()),
            );
            t.row(cells);
        }
        t
    }

    fn arm_rows_table(&self) -> Table {
        let mut header = vec!["config".to_string()];
        header.extend(self.benchmarks.iter().cloned());
        if self.with_gm {
            header.push("GM".to_string());
        }
        let mut t = Table::new(header);
        let mut aligns = vec![Align::Left];
        aligns.extend(std::iter::repeat_n(
            Align::Right,
            self.benchmarks.len() + usize::from(self.with_gm),
        ));
        t.align(aligns);
        for a in &self.arms {
            let mut cells = vec![a.series.clone()];
            cells.extend(a.values.iter().map(|&v| self.fmt_value(v)));
            if self.with_gm {
                cells.push(a.gm.map(|g| self.fmt_value(g)).unwrap_or_default());
            }
            t.row(cells);
        }
        t
    }

    fn gm_pivot_table(&self) -> Table {
        let mut groups: Vec<String> = Vec::new();
        let mut series: Vec<String> = Vec::new();
        for a in &self.arms {
            let g = a.group.clone().unwrap_or_default();
            if !groups.contains(&g) {
                groups.push(g);
            }
            if !series.contains(&a.series) {
                series.push(a.series.clone());
            }
        }
        let mut header = vec!["config".to_string()];
        header.extend(series.iter().cloned());
        let mut t = Table::new(header);
        let mut aligns = vec![Align::Left];
        aligns.extend(std::iter::repeat_n(Align::Right, series.len()));
        t.align(aligns);
        for g in &groups {
            let mut cells = vec![g.clone()];
            for s in &series {
                let cell = self
                    .arms
                    .iter()
                    .find(|a| a.group.as_deref().unwrap_or_default() == g && a.series == *s)
                    .and_then(|a| a.gm)
                    .map(|gm| self.fmt_value(gm))
                    .unwrap_or_default();
                cells.push(cell);
            }
            t.row(cells);
        }
        t
    }

    /// The full report as a JSON tree (all values at full precision).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("title", Json::from(self.title.as_str())),
            ("metric", Json::from(self.metric.as_str())),
            (
                "benchmarks",
                Json::arr(self.benchmarks.iter().map(|b| Json::from(b.as_str()))),
            ),
            (
                "arms",
                Json::arr(self.arms.iter().map(|a| {
                    Json::obj([
                        ("series", Json::from(a.series.as_str())),
                        ("group", Json::from(a.group.as_deref().map(Json::from))),
                        ("config", Json::from(a.config.as_str())),
                        (
                            "baseline",
                            Json::from(a.baseline.as_deref().map(Json::from)),
                        ),
                        ("gm", Json::from(a.gm)),
                        ("values", Json::arr(a.values.iter().map(|&v| Json::from(v)))),
                        ("runs", Json::arr(a.runs.iter().map(RunSummary::to_json))),
                    ])
                })),
            ),
        ])
    }

    /// Prints the title, a TSV block and the aligned table to stdout —
    /// the classic harness output format.
    pub fn print(&self) {
        println!("# {}", self.title);
        let t = self.table();
        print!("{}", t.to_tsv());
        println!();
        println!("{t}");
    }

    /// Writes `<dir>/<name>.json` (creating `dir` as needed).
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_json(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json().to_pretty())?;
        Ok(path)
    }

    /// The report directory: `BOSIM_REPORT_DIR` or `target/reports`.
    pub fn default_dir() -> PathBuf {
        std::env::var_os("BOSIM_REPORT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/reports"))
    }

    /// Prints the tables and writes the JSON report to
    /// [`default_dir`](Self::default_dir), logging the path to stderr. A
    /// JSON write failure is reported on stderr but does not abort.
    pub fn emit(&self) {
        self.print();
        match self.write_json(&Self::default_dir()) {
            Ok(path) => eprintln!("[bosim] report written to {}", path.display()),
            Err(e) => eprintln!("[bosim] could not write JSON report: {e}"),
        }
    }
}

/// Recomputes an arm's geometric mean (used by [`Experiment`] while
/// assembling reports).
pub(crate) fn arm_gm(values: &[f64], with_gm: bool) -> Option<f64> {
    if !with_gm || values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    geometric_mean(values.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(layout: Layout) -> Report {
        let arm = |series: &str, group: Option<&str>, values: Vec<f64>| ArmReport {
            series: series.into(),
            group: group.map(Into::into),
            config: format!("4KB/1-core/{series}"),
            baseline: Some("4KB/1-core/next-line".into()),
            gm: arm_gm(&values, true),
            runs: Vec::new(),
            values,
        };
        Report {
            name: "test_report".into(),
            title: "A test report".into(),
            metric: "speedup".into(),
            benchmarks: vec!["429".into(), "433".into()],
            arms: vec![
                arm("BO", Some("4KB/1-core"), vec![2.0, 8.0]),
                arm("SBP", Some("4KB/1-core"), vec![1.0, 1.0]),
            ],
            layout,
            with_gm: true,
            decimals: 3,
        }
    }

    #[test]
    fn bench_rows_table_has_gm_row() {
        let tsv = sample_report(Layout::BenchRows).table().to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "benchmark\tBO\tSBP");
        assert_eq!(lines[3], "GM\t4.000\t1.000");
    }

    #[test]
    fn arm_rows_table_transposes() {
        let tsv = sample_report(Layout::ArmRows).table().to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "config\t429\t433\tGM");
        assert_eq!(lines[1], "BO\t2.000\t8.000\t4.000");
    }

    #[test]
    fn gm_pivot_groups_series() {
        let tsv = sample_report(Layout::GmPivot).table().to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "config\tBO\tSBP");
        assert_eq!(lines[1], "4KB/1-core\t4.000\t1.000");
    }

    #[test]
    fn json_contains_full_grid() {
        let j = sample_report(Layout::BenchRows).to_json().to_string();
        assert!(j.contains(r#""name":"test_report""#));
        assert!(j.contains(r#""values":[2,8]"#));
        assert!(j.contains(r#""gm":4"#));
    }

    #[test]
    fn gm_skips_nonpositive_values() {
        assert_eq!(arm_gm(&[1.0, 0.0], true), None);
        assert_eq!(arm_gm(&[], true), None);
        assert_eq!(arm_gm(&[2.0, 8.0], false), None);
        assert_eq!(arm_gm(&[2.0, 8.0], true), Some(4.0));
    }
}
