//! The declarative experiment grid.
//!
//! Every figure and table of the paper's evaluation is a grid of
//! (benchmark × machine configuration) simulations summarised against a
//! baseline. [`Experiment`] expresses that declaratively: name the
//! benchmarks, add *arms* (a labelled subject configuration, optionally
//! paired with a baseline configuration), pick a metric and a table
//! layout, and call [`run`](Experiment::run):
//!
//! ```no_run
//! use bosim::{prefetchers, SimConfig};
//! use bosim_bench::{Experiment, Layout};
//! use bosim_types::PageSize;
//!
//! let base = SimConfig::baseline(PageSize::M4, 1);
//! let report = Experiment::new("bo_vs_nextline", "BO speedup, 4MB pages")
//!     .benchmark_ids(&["433", "462"])
//!     .arm_vs("BO", base.clone().with_prefetcher(prefetchers::bo_default()), base)
//!     .run()
//!     .expect("grid runs");
//! report.emit(); // text tables + target/reports/bo_vs_nextline.json
//! ```
//!
//! The harness owns the details the 18 figure binaries used to
//! duplicate: job deduplication (shared baselines run once), worker
//! threading, speedup pairing by benchmark, geometric-mean summaries and
//! structured [`Report`] output.

use crate::report::{arm_gm, ArmReport, Layout, Report, RunSummary};
use crate::{cfg_label, selected_benchmarks, six_baselines, threads};
use bosim::{run_jobs, ConfigError, Job, RunnerError, SimConfig, SimResult};
use bosim_trace::{suite, BenchmarkSpec};
use bosim_types::PageSize;
use std::collections::HashMap;
use std::fmt;

/// The per-run quantity an experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Metric {
    /// Instructions per cycle on core 0; arms with a baseline report the
    /// IPC ratio (speedup).
    #[default]
    Ipc,
    /// DRAM accesses per kilo-instruction (Figure 13); arms with a
    /// baseline report the traffic ratio.
    DramPerKi,
}

impl Metric {
    fn value(self, r: &SimResult) -> f64 {
        match self {
            Metric::Ipc => r.ipc(),
            Metric::DramPerKi => r.dram_accesses_per_ki(),
        }
    }

    /// The metric value out of a journaled row (the same quantity
    /// [`value`](Self::value) extracts from a live result — rows store
    /// both so a resumed sweep can assemble either metric).
    pub(crate) fn row_value(self, ipc: f64, dram_per_ki: f64) -> f64 {
        match self {
            Metric::Ipc => ipc,
            Metric::DramPerKi => dram_per_ki,
        }
    }

    pub(crate) fn label(self, with_baseline: bool) -> &'static str {
        match (self, with_baseline) {
            (Metric::Ipc, false) => "ipc",
            (Metric::Ipc, true) => "speedup",
            (Metric::DramPerKi, false) => "dram_per_ki",
            (Metric::DramPerKi, true) => "dram_per_ki_ratio",
        }
    }
}

/// One arm of an experiment before it runs.
#[derive(Debug, Clone)]
struct ArmSpec {
    series: String,
    group: Option<String>,
    subject: SimConfig,
    baseline: Option<SimConfig>,
}

/// A failure while assembling or running an experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// The experiment had no arms.
    NoArms,
    /// Some arms had baselines and some did not — the report's metric
    /// would mislabel the raw arms as ratios.
    MixedBaselines {
        /// A series label with a baseline.
        with: String,
        /// A series label without one.
        without: String,
    },
    /// An arm's configuration failed validation.
    InvalidConfig {
        /// The offending arm's series label.
        series: String,
        /// The violated constraint.
        error: ConfigError,
    },
    /// The job grid failed to run.
    Runner(RunnerError),
    /// A `--reps` repetition of the grid produced different results —
    /// the simulator broke its determinism promise.
    NonDeterministic {
        /// Which repetition diverged (1-based; repetition 1 is the
        /// reference).
        rep: usize,
        /// A human-readable `benchmark [config]` tag for the first
        /// diverging job.
        job: String,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::NoArms => write!(f, "experiment has no arms"),
            ExperimentError::MixedBaselines { with, without } => write!(
                f,
                "arm {with:?} has a baseline but arm {without:?} does not: \
                 an experiment reports either raw metrics or ratios, not both"
            ),
            ExperimentError::InvalidConfig { series, error } => {
                write!(f, "arm {series:?} has an invalid configuration: {error}")
            }
            ExperimentError::Runner(e) => write!(f, "experiment grid failed: {e}"),
            ExperimentError::NonDeterministic { rep, job } => write!(
                f,
                "repetition {rep} diverged from repetition 1 on {job}: \
                 simulation results must be bit-identical across reps"
            ),
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::InvalidConfig { error, .. } => Some(error),
            ExperimentError::Runner(e) => Some(e),
            ExperimentError::NoArms
            | ExperimentError::MixedBaselines { .. }
            | ExperimentError::NonDeterministic { .. } => None,
        }
    }
}

impl From<RunnerError> for ExperimentError {
    fn from(e: RunnerError) -> Self {
        ExperimentError::Runner(e)
    }
}

/// A declarative (benchmark × configuration) grid (see the
/// [crate docs](crate)).
///
/// Benchmarks may be synthetic suite specs or file-backed external
/// traces ([`BenchmarkSpec::from_trace`]) — the grid machinery (dedup,
/// threading, speedup pairing) treats them identically, and per-arm
/// trace sampling rides in
/// [`SimConfig::sample`](bosim::SimConfig::sample).
#[derive(Debug, Clone)]
pub struct Experiment {
    name: String,
    title: String,
    benchmarks: Vec<BenchmarkSpec>,
    arms: Vec<ArmSpec>,
    metric: Metric,
    layout: Layout,
    with_gm: bool,
    decimals: usize,
    threads: Option<usize>,
    reps: usize,
}

impl Experiment {
    /// Creates an empty experiment. `name` is the machine-friendly id
    /// (and JSON file stem); `title` heads the printed tables.
    ///
    /// Defaults: the full benchmark suite (honouring
    /// `BOSIM_BENCHMARKS`), [`Metric::Ipc`], [`Layout::BenchRows`],
    /// geometric-mean summaries on, 3 decimals, `BOSIM_THREADS` workers.
    pub fn new(name: impl Into<String>, title: impl Into<String>) -> Self {
        Experiment {
            name: name.into(),
            title: title.into(),
            benchmarks: Vec::new(),
            arms: Vec::new(),
            metric: Metric::Ipc,
            layout: Layout::BenchRows,
            with_gm: true,
            decimals: 3,
            threads: None,
            reps: 1,
        }
    }

    /// Replaces the benchmark list.
    pub fn benchmarks(mut self, benchmarks: Vec<BenchmarkSpec>) -> Self {
        self.benchmarks = benchmarks;
        self
    }

    /// Replaces the benchmark list by suite short-ids.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id — harness binaries treat that as a usage
    /// error.
    pub fn benchmark_ids(self, ids: &[&str]) -> Self {
        self.benchmarks(
            ids.iter()
                .map(|id| {
                    // bosim-lint: allow(P003, harness entry point; env-var benchmark lists fail fast by design)
                    suite::benchmark(id).unwrap_or_else(|| panic!("unknown benchmark id {id:?}"))
                })
                .collect(),
        )
    }

    /// Adds an arm reporting the raw metric of `subject`.
    pub fn arm(mut self, series: impl Into<String>, subject: SimConfig) -> Self {
        self.arms.push(ArmSpec {
            series: series.into(),
            group: None,
            subject,
            baseline: None,
        });
        self
    }

    /// Adds an arm reporting `subject` relative to `baseline`
    /// (per-benchmark metric ratios, paired by benchmark).
    pub fn arm_vs(
        mut self,
        series: impl Into<String>,
        subject: SimConfig,
        baseline: SimConfig,
    ) -> Self {
        self.arms.push(ArmSpec {
            series: series.into(),
            group: None,
            subject,
            baseline: Some(baseline),
        });
        self
    }

    /// Like [`arm_vs`](Self::arm_vs) with a group label, for
    /// [`Layout::GmPivot`] tables (group = row, series = column).
    pub fn arm_grouped(
        mut self,
        group: impl Into<String>,
        series: impl Into<String>,
        subject: SimConfig,
        baseline: SimConfig,
    ) -> Self {
        self.arms.push(ArmSpec {
            series: series.into(),
            group: Some(group.into()),
            subject,
            baseline: Some(baseline),
        });
        self
    }

    /// Sets the reported metric.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the table layout.
    pub fn layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Enables or disables geometric-mean summaries.
    pub fn gm(mut self, with_gm: bool) -> Self {
        self.with_gm = with_gm;
        self
    }

    /// Sets table decimal places.
    pub fn decimals(mut self, decimals: usize) -> Self {
        self.decimals = decimals;
        self
    }

    /// Overrides the worker-thread count (default: `BOSIM_THREADS` or
    /// all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Runs the deduplicated grid `reps` times and asserts that every
    /// repetition reproduces the first bit-identically — a determinism
    /// harness for CI and for flushing out scheduling-order bugs in the
    /// parallel tick loop. Simulated results are unaffected (the first
    /// repetition is reported); only wall-clock cost scales. `reps = 0`
    /// is treated as 1.
    pub fn reps(mut self, reps: usize) -> Self {
        self.reps = reps.max(1);
        self
    }

    /// Resolves the experiment into an [`ExperimentPlan`]: the
    /// deduplicated job list plus everything needed to assemble the
    /// [`Report`] once results exist. `run` is `plan` + execute +
    /// [`assemble`](ExperimentPlan::assemble); a resumable sweep
    /// (`bosim serve`) executes the same plan job by job, journalling
    /// each completed cell.
    ///
    /// # Errors
    ///
    /// Returns an [`ExperimentError`] when the experiment is empty,
    /// mixes baseline-paired and raw arms, or an arm's configuration is
    /// invalid.
    pub fn plan(&self) -> Result<ExperimentPlan, ExperimentError> {
        if self.arms.is_empty() {
            return Err(ExperimentError::NoArms);
        }
        // The report carries one metric label: either every arm is a
        // ratio against its baseline, or every arm is raw.
        if let (Some(with), Some(without)) = (
            self.arms.iter().find(|a| a.baseline.is_some()),
            self.arms.iter().find(|a| a.baseline.is_none()),
        ) {
            return Err(ExperimentError::MixedBaselines {
                with: with.series.clone(),
                without: without.series.clone(),
            });
        }
        for arm in &self.arms {
            for cfg in std::iter::once(&arm.subject).chain(arm.baseline.as_ref()) {
                cfg.validate()
                    .map_err(|error| ExperimentError::InvalidConfig {
                        series: arm.series.clone(),
                        error,
                    })?;
            }
        }
        let benchmarks = if self.benchmarks.is_empty() {
            selected_benchmarks()
        } else {
            self.benchmarks.clone()
        };

        // Deduplicate identical (benchmark, configuration) cells — shared
        // baselines across arms simulate once. The configuration identity
        // is its full Debug rendering (specs carry their parameters).
        let mut jobs: Vec<Job> = Vec::new();
        let mut job_keys: Vec<String> = Vec::new();
        let mut index: HashMap<(usize, String), usize> = HashMap::new();
        let mut cell = |jobs: &mut Vec<Job>,
                        keys: &mut Vec<String>,
                        bi: usize,
                        bench: &BenchmarkSpec,
                        cfg: &SimConfig| {
            let debug = format!("{cfg:?}");
            let key = (bi, debug);
            *index.entry(key).or_insert_with_key(|(bi, debug)| {
                // The journal key must survive a process restart, so it
                // hashes the full configuration identity instead of
                // relying on in-process indices alone.
                keys.push(format!(
                    "{}#{bi}|{:016x}",
                    bench.short,
                    crate::journal::fnv64(debug.as_bytes())
                ));
                jobs.push(Job {
                    bench: bench.clone(),
                    config: cfg.clone(),
                });
                jobs.len() - 1
            })
        };
        // (arm, benchmark) -> (subject job, baseline job) indices.
        let mut lookup: Vec<Vec<(usize, Option<usize>)>> = Vec::with_capacity(self.arms.len());
        for arm in &self.arms {
            let mut row = Vec::with_capacity(benchmarks.len());
            for (bi, bench) in benchmarks.iter().enumerate() {
                let s = cell(&mut jobs, &mut job_keys, bi, bench, &arm.subject);
                let b = arm
                    .baseline
                    .as_ref()
                    .map(|c| cell(&mut jobs, &mut job_keys, bi, bench, c));
                row.push((s, b));
            }
            lookup.push(row);
        }

        let paired = self.arms.iter().any(|a| a.baseline.is_some());
        Ok(ExperimentPlan {
            name: self.name.clone(),
            title: self.title.clone(),
            metric: self.metric,
            layout: self.layout,
            with_gm: self.with_gm,
            decimals: self.decimals,
            paired,
            benchmarks,
            arms: self
                .arms
                .iter()
                .map(|a| PlannedArm {
                    series: a.series.clone(),
                    group: a.group.clone(),
                    config: a.subject.label(),
                    baseline: a.baseline.as_ref().map(SimConfig::label),
                })
                .collect(),
            jobs,
            job_keys,
            lookup,
        })
    }

    /// Runs the deduplicated grid on the worker pool and assembles the
    /// [`Report`].
    ///
    /// # Errors
    ///
    /// Returns an [`ExperimentError`] when the experiment is empty,
    /// mixes baseline-paired and raw arms, an arm's configuration is
    /// invalid, or a simulation job fails.
    pub fn run(self) -> Result<Report, ExperimentError> {
        let plan = self.plan()?;
        let threads = self.threads.unwrap_or_else(threads);
        eprintln!(
            "[bosim] {}: {} unique jobs ({} arms x {} benchmarks) on {} threads",
            self.name,
            plan.jobs.len(),
            self.arms.len(),
            plan.benchmarks.len(),
            threads,
        );
        let t0 = std::time::Instant::now();
        let results = run_jobs(&plan.jobs, threads)?;
        // Extra repetitions re-run the identical grid and must reproduce
        // it exactly; any drift is a determinism bug, so the whole
        // experiment fails rather than silently averaging it away.
        for rep in 2..=self.reps {
            let again = run_jobs(&plan.jobs, threads)?;
            if let Some(i) = (0..plan.jobs.len()).find(|&i| again[i] != results[i]) {
                return Err(ExperimentError::NonDeterministic {
                    rep,
                    job: format!(
                        "{} [{}]",
                        plan.jobs[i].bench.short,
                        plan.jobs[i].config.label()
                    ),
                });
            }
        }
        eprintln!(
            "[bosim] {}: grid done in {:.1}s{}",
            self.name,
            t0.elapsed().as_secs_f64(),
            if self.reps > 1 {
                format!(" ({} reps, bit-identical)", self.reps)
            } else {
                String::new()
            }
        );
        Ok(plan.assemble(&results))
    }

    /// Runs the experiment and emits the report (tables + JSON file);
    /// exits the process with an error message on failure. The
    /// convenience entry point for the figure binaries.
    pub fn run_and_emit(self) -> Report {
        match self.run() {
            Ok(report) => {
                report.emit();
                report
            }
            Err(e) => {
                eprintln!("[bosim] experiment failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// One arm of a resolved [`ExperimentPlan`]: the labels the report
/// carries, with the configurations already flattened into the job
/// list.
#[derive(Debug, Clone)]
pub struct PlannedArm {
    /// Series label shown in tables.
    pub series: String,
    /// Optional group label for pivoted GM tables.
    pub group: Option<String>,
    /// Subject configuration label.
    pub config: String,
    /// Baseline configuration label, when the arm reports ratios.
    pub baseline: Option<String>,
}

/// A resolved experiment: the deduplicated job grid plus the metadata
/// needed to assemble the [`Report`] once every job has a result.
///
/// Produced by [`Experiment::plan`]. [`Experiment::run`] executes the
/// whole grid in one process; `bosim serve` executes the same plan one
/// job at a time, journalling each completed cell (see
/// [`journal`](crate::journal)) so a killed sweep resumes without
/// re-running finished work.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    pub(crate) name: String,
    pub(crate) title: String,
    pub(crate) metric: Metric,
    pub(crate) layout: Layout,
    pub(crate) with_gm: bool,
    pub(crate) decimals: usize,
    pub(crate) paired: bool,
    pub(crate) benchmarks: Vec<BenchmarkSpec>,
    pub(crate) arms: Vec<PlannedArm>,
    pub(crate) jobs: Vec<Job>,
    pub(crate) job_keys: Vec<String>,
    /// (arm, benchmark) -> (subject job, baseline job) indices.
    pub(crate) lookup: Vec<Vec<(usize, Option<usize>)>>,
}

impl ExperimentPlan {
    /// The experiment id (the report name and JSON file stem).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The deduplicated job list, in plan order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The planned arms, in report order.
    pub fn arms(&self) -> &[PlannedArm] {
        &self.arms
    }

    /// The benchmark list, in report order.
    pub fn benchmarks(&self) -> &[BenchmarkSpec] {
        &self.benchmarks
    }

    /// The restart-stable identity of job `i`:
    /// `<benchmark>#<bench-index>|<fnv64 of the config Debug form>`.
    /// Two processes planning the same experiment derive the same keys,
    /// which is what lets a resumed sweep trust journal entries written
    /// by a previous run.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range (keys parallel
    /// [`jobs`](Self::jobs)).
    pub fn job_key(&self, i: usize) -> &str {
        &self.job_keys[i]
    }

    /// A fingerprint over the whole plan (name, metric, arms, job
    /// keys). A journal records it so a resume against a *different*
    /// corpus or arm set is rejected instead of silently mixing grids.
    pub fn fingerprint(&self) -> String {
        let mut text = String::new();
        text.push_str(&self.name);
        text.push('\n');
        text.push_str(self.metric.label(self.paired));
        text.push('\n');
        for arm in &self.arms {
            text.push_str(&arm.series);
            text.push('|');
            text.push_str(arm.group.as_deref().unwrap_or(""));
            text.push('|');
            text.push_str(&arm.config);
            text.push('|');
            text.push_str(arm.baseline.as_deref().unwrap_or(""));
            text.push('\n');
        }
        for key in &self.job_keys {
            text.push_str(key);
            text.push('\n');
        }
        format!("{:016x}", crate::journal::fnv64(text.as_bytes()))
    }

    /// Assembles the [`Report`] out of one result per planned job
    /// (same order as [`jobs`](Self::jobs)).
    ///
    /// # Panics
    ///
    /// Panics when `results` is shorter than the job list.
    pub fn assemble(&self, results: &[SimResult]) -> Report {
        let arms = self
            .arms
            .iter()
            .zip(&self.lookup)
            .map(|(arm, row)| {
                let values: Vec<f64> = row
                    .iter()
                    .map(|&(s, b)| {
                        let subject = self.metric.value(&results[s]);
                        match b {
                            Some(b) => subject / self.metric.value(&results[b]),
                            None => subject,
                        }
                    })
                    .collect();
                ArmReport {
                    series: arm.series.clone(),
                    group: arm.group.clone(),
                    config: arm.config.clone(),
                    baseline: arm.baseline.clone(),
                    gm: arm_gm(&values, self.with_gm),
                    runs: row
                        .iter()
                        .map(|&(s, _)| RunSummary::from(&results[s]))
                        .collect(),
                    values,
                }
            })
            .collect();

        Report {
            name: self.name.clone(),
            title: self.title.clone(),
            metric: self.metric.label(self.paired).to_string(),
            benchmarks: self.benchmarks.iter().map(|b| b.short.clone()).collect(),
            arms,
            layout: self.layout,
            with_gm: self.with_gm,
            decimals: self.decimals,
        }
    }
}

/// The Figures 4–6 shape: for each §5 baseline machine (honouring
/// `BOSIM_CONFIGS`), one arm comparing `subject(page, cores)` against
/// the Table 1 baseline, per benchmark.
pub fn six_baseline_speedup(
    name: &str,
    title: &str,
    subject: impl Fn(PageSize, usize) -> SimConfig,
) -> Experiment {
    let mut e = Experiment::new(name, title);
    for (page, cores) in six_baselines() {
        e = e.arm_vs(
            cfg_label(page, cores),
            subject(page, cores),
            SimConfig::baseline(page, cores),
        );
    }
    e
}

/// A named configuration variant of a §5 baseline machine.
pub type VariantFn = Box<dyn Fn(PageSize, usize) -> SimConfig>;

/// The Figures 7/9/10/11 shape: a [`Layout::GmPivot`] experiment with
/// one row per §5 baseline machine and one column per named variant,
/// each cell the geometric-mean speedup over that machine's Table 1
/// baseline.
pub fn six_baseline_gm_variants(
    name: &str,
    title: &str,
    variants: &[(String, VariantFn)],
) -> Experiment {
    let mut e = Experiment::new(name, title).layout(Layout::GmPivot);
    for (page, cores) in six_baselines() {
        for (label, make) in variants {
            e = e.arm_grouped(
                cfg_label(page, cores),
                label.clone(),
                make(page, cores),
                SimConfig::baseline(page, cores),
            );
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use bosim::prefetchers;

    fn tiny(cfg: SimConfig) -> SimConfig {
        SimConfig {
            warmup_instructions: 2_000,
            measure_instructions: 10_000,
            ..cfg
        }
    }

    #[test]
    fn empty_experiment_is_rejected() {
        assert!(matches!(
            Experiment::new("x", "x").run(),
            Err(ExperimentError::NoArms)
        ));
    }

    #[test]
    fn invalid_arm_config_is_rejected_before_running() {
        let bad = SimConfig {
            active_cores: 0,
            ..Default::default()
        };
        let err = Experiment::new("x", "x")
            .benchmark_ids(&["456"])
            .arm("bad", bad)
            .run()
            .unwrap_err();
        match err {
            ExperimentError::InvalidConfig { series, error } => {
                assert_eq!(series, "bad");
                assert_eq!(error, ConfigError::ZeroCores);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shared_baselines_are_deduplicated_and_speedups_pair() {
        let base = tiny(SimConfig::default());
        let bo = base.clone().with_prefetcher(prefetchers::bo_default());
        let none = base.clone().with_prefetcher(prefetchers::none());
        let report = Experiment::new("dedup_test", "dedup")
            .benchmark_ids(&["456", "444"])
            .arm_vs("BO", bo, base.clone())
            .arm_vs("none", none, base.clone())
            .arm_vs("self", base.clone(), base.clone())
            .run()
            .expect("grid runs");
        assert_eq!(report.benchmarks, vec!["456", "444"]);
        assert_eq!(report.arms.len(), 3);
        // The self-arm pairs a config with itself: speedup exactly 1.
        for v in &report.arms[2].values {
            assert!((v - 1.0).abs() < 1e-12, "self speedup {v}");
        }
        assert_eq!(report.metric, "speedup");
        // Subject runs carry real statistics.
        assert!(report.arms[0].runs[0].ipc > 0.0);
    }

    #[test]
    fn mixed_raw_and_baseline_arms_are_rejected() {
        let base = tiny(SimConfig::default());
        let err = Experiment::new("mixed", "mixed")
            .benchmark_ids(&["456"])
            .arm("raw", base.clone())
            .arm_vs("paired", base.clone(), base)
            .run()
            .unwrap_err();
        match err {
            ExperimentError::MixedBaselines { with, without } => {
                assert_eq!(with, "paired");
                assert_eq!(without, "raw");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn repetitions_reproduce_the_grid_bit_identically() {
        // The simulator is deterministic, so the rep harness must pass
        // (and report the repetition count only on stderr — the report
        // itself is the first repetition's).
        let report = Experiment::new("reps", "reps")
            .benchmark_ids(&["456"])
            .arm("base", tiny(SimConfig::default()))
            .reps(3)
            .run()
            .expect("deterministic grid survives repetition");
        assert!(report.arms[0].values[0] > 0.0);
    }

    #[test]
    fn raw_metric_arms_report_ipc() {
        let report = Experiment::new("raw", "raw")
            .benchmark_ids(&["456"])
            .arm("base", tiny(SimConfig::default()))
            .gm(false)
            .run()
            .expect("runs");
        assert_eq!(report.metric, "ipc");
        assert_eq!(report.arms[0].gm, None);
        assert!(report.arms[0].values[0] > 0.0);
    }
}
