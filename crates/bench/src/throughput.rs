//! Simulator-throughput measurement (the `perf` binary).
//!
//! The paper's figures sweep dozens of configurations through the
//! cycle-accurate model, so *simulator* throughput — sim-cycles/sec and
//! µops/sec of wall-clock time — bounds how many scenarios are
//! explorable. This module measures it: every benchmark runs twice on
//! identical configurations, once with the naive every-cycle system loop
//! ([`SimConfig::fast_forward`] off) and once with idle-stretch
//! fast-forwarding (the default), and the two [`SimResult`]s are
//! asserted bit-identical before any rate is reported. The output rides
//! the existing [`Report`] machinery: `BENCH_throughput.json` lands in
//! the report directory next to the figure reports.
//!
//! Runs are strictly serial — parallel workers would share memory
//! bandwidth and turn the wall-clock numbers into noise.

use crate::report::{ArmReport, Layout, Report, RunSummary};
use bosim::{SimConfig, SimResult, System};
use bosim_trace::BenchmarkSpec;
use std::time::Instant;

/// One timed simulation: simulated work per second of wall clock.
#[derive(Debug, Clone)]
pub struct ThroughputMeasurement {
    /// Benchmark name.
    pub benchmark: String,
    /// Total simulated cycles (warm-up + measured window).
    pub sim_cycles: u64,
    /// Cycles actually stepped (the rest were fast-forwarded).
    pub steps: u64,
    /// Total µops retired by core 0 (warm-up + measured window).
    pub uops: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// The measured-window result (for the invariance check).
    pub result: SimResult,
}

impl ThroughputMeasurement {
    /// Simulated megacycles per wall-clock second.
    pub fn mcycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_seconds / 1e6
    }

    /// Retired µops (core 0) per wall-clock second, in millions.
    pub fn muops_per_sec(&self) -> f64 {
        self.uops as f64 / self.wall_seconds / 1e6
    }
}

/// Runs `bench` once under `cfg` and times it.
pub fn measure(cfg: &SimConfig, bench: &BenchmarkSpec) -> ThroughputMeasurement {
    let mut sys = System::new(cfg, bench);
    let start = Instant::now();
    let result = sys.run();
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    ThroughputMeasurement {
        benchmark: bench.name.clone(),
        sim_cycles: sys.cycle(),
        steps: sys.steps_executed(),
        uops: sys.core0_stats().retired,
        wall_seconds: wall,
        result,
    }
}

/// A naive/optimized measurement pair for one benchmark.
#[derive(Debug, Clone)]
pub struct ThroughputPair {
    /// Every-cycle loop (`fast_forward` off).
    pub naive: ThroughputMeasurement,
    /// Fast-forwarding loop (`fast_forward` on).
    pub optimized: ThroughputMeasurement,
}

impl ThroughputPair {
    /// Optimized over naive sim-cycles/sec.
    pub fn speedup(&self) -> f64 {
        self.optimized.mcycles_per_sec() / self.naive.mcycles_per_sec()
    }
}

/// Measures the whole `benches` grid: `reps` interleaved naive and
/// optimized runs per benchmark, keeping the fastest wall-clock run of
/// each mode (the minimum rejects scheduler and frequency noise, which
/// only ever slows a run down). A short discarded simulation up front
/// absorbs process start-up costs so neither mode pays them.
///
/// # Panics
///
/// Panics if any benchmark's naive and optimized runs disagree on any
/// counter of the measured window — fast-forwarding must be invisible
/// in the results, and a throughput number for a *different* simulation
/// would be meaningless.
pub fn measure_suite(
    base: &SimConfig,
    benches: &[BenchmarkSpec],
    reps: usize,
) -> Vec<ThroughputPair> {
    let reps = reps.max(1);
    if let Some(first) = benches.first() {
        let mut warm = base.clone();
        warm.warmup_instructions = 5_000;
        warm.measure_instructions = 20_000;
        let _ = measure(&warm, first);
    }
    let mut naive_cfg = base.clone();
    naive_cfg.fast_forward = false;
    naive_cfg.naive_hot_path = true;
    let mut opt_cfg = base.clone();
    opt_cfg.fast_forward = true;
    opt_cfg.naive_hot_path = false;
    benches
        .iter()
        .map(|bench| {
            let fastest = |best: Option<ThroughputMeasurement>, m: ThroughputMeasurement| match best
            {
                Some(b) if b.wall_seconds <= m.wall_seconds => Some(b),
                _ => Some(m),
            };
            let mut naive: Option<ThroughputMeasurement> = None;
            let mut optimized: Option<ThroughputMeasurement> = None;
            for _ in 0..reps {
                let n = measure(&naive_cfg, bench);
                let o = measure(&opt_cfg, bench);
                assert_eq!(
                    n.result, o.result,
                    "{}: fast-forward must be cycle-exact",
                    bench.name
                );
                assert_eq!(n.sim_cycles, o.sim_cycles, "{}", bench.name);
                naive = fastest(naive, n);
                optimized = fastest(optimized, o);
            }
            ThroughputPair {
                naive: naive.expect("reps >= 1"), // bosim-lint: allow(P002, reps >= 1 so both arms ran)
                optimized: optimized.expect("reps >= 1"), // bosim-lint: allow(P002, reps >= 1 so both arms ran)
            }
        })
        .collect()
}

/// Aggregate rate: total simulated cycles over total wall seconds.
fn total_mcycles_per_sec(ms: &[&ThroughputMeasurement]) -> f64 {
    let cycles: u64 = ms.iter().map(|m| m.sim_cycles).sum();
    let wall: f64 = ms.iter().map(|m| m.wall_seconds).sum();
    cycles as f64 / wall.max(1e-9) / 1e6
}

fn total_muops_per_sec(ms: &[&ThroughputMeasurement]) -> f64 {
    let uops: u64 = ms.iter().map(|m| m.uops).sum();
    let wall: f64 = ms.iter().map(|m| m.wall_seconds).sum();
    uops as f64 / wall.max(1e-9) / 1e6
}

/// Builds the `BENCH_throughput` report: one column per benchmark plus
/// a `TOTAL` column (aggregate rates, not means), one row per metric.
/// The `speedup` row's `TOTAL` cell is the headline number: optimized
/// over naive aggregate sim-cycles/sec.
pub fn throughput_report(base: &SimConfig, pairs: &[ThroughputPair]) -> Report {
    // Full benchmark names: a bare numeric prefix ("462") reads as a
    // data point in a throughput table, not a label.
    let mut benchmarks: Vec<String> = pairs.iter().map(|p| p.naive.benchmark.clone()).collect();
    benchmarks.push("TOTAL".to_string());

    let naive: Vec<&ThroughputMeasurement> = pairs.iter().map(|p| &p.naive).collect();
    let optimized: Vec<&ThroughputMeasurement> = pairs.iter().map(|p| &p.optimized).collect();

    let arm = |series: &str, values: Vec<f64>, runs: &[&ThroughputMeasurement]| ArmReport {
        series: series.to_string(),
        group: None,
        config: base.label(),
        baseline: None,
        values,
        gm: None,
        runs: runs.iter().map(|m| RunSummary::from(&m.result)).collect(),
    };

    let rates =
        |ms: &[&ThroughputMeasurement], f: fn(&ThroughputMeasurement) -> f64, total: f64| {
            let mut v: Vec<f64> = ms.iter().map(|m| f(m)).collect();
            v.push(total);
            v
        };
    let mut speedups: Vec<f64> = pairs.iter().map(ThroughputPair::speedup).collect();
    speedups.push(total_mcycles_per_sec(&optimized) / total_mcycles_per_sec(&naive));

    Report {
        name: "BENCH_throughput".to_string(),
        title: format!(
            "Simulator throughput, {} (naive vs optimized)",
            base.label()
        ),
        metric: "sim-Mcycles/s".to_string(),
        benchmarks,
        arms: vec![
            arm(
                "naive Mcyc/s",
                rates(
                    &naive,
                    ThroughputMeasurement::mcycles_per_sec,
                    total_mcycles_per_sec(&naive),
                ),
                &naive,
            ),
            arm(
                "opt Mcyc/s",
                rates(
                    &optimized,
                    ThroughputMeasurement::mcycles_per_sec,
                    total_mcycles_per_sec(&optimized),
                ),
                &optimized,
            ),
            arm(
                "naive Muops/s",
                rates(
                    &naive,
                    ThroughputMeasurement::muops_per_sec,
                    total_muops_per_sec(&naive),
                ),
                &naive,
            ),
            arm(
                "opt Muops/s",
                rates(
                    &optimized,
                    ThroughputMeasurement::muops_per_sec,
                    total_muops_per_sec(&optimized),
                ),
                &optimized,
            ),
            arm("speedup", speedups, &optimized),
        ],
        layout: Layout::ArmRows,
        with_gm: false,
        decimals: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bosim_trace::suite;

    #[test]
    fn measure_pairs_are_invariant_and_report_shapes_up() {
        let cfg = SimConfig {
            warmup_instructions: 2_000,
            measure_instructions: 10_000,
            ..Default::default()
        };
        let benches = vec![
            suite::benchmark("462").expect("exists"),
            suite::benchmark("444").expect("exists"),
        ];
        let pairs = measure_suite(&cfg, &benches, 1);
        assert_eq!(pairs.len(), 2);
        for p in &pairs {
            assert!(p.naive.sim_cycles > 0);
            assert!(p.naive.wall_seconds > 0.0);
            assert!(p.speedup() > 0.0);
        }
        let report = throughput_report(&cfg, &pairs);
        assert_eq!(report.name, "BENCH_throughput");
        assert_eq!(report.benchmarks.len(), 3, "two benchmarks plus TOTAL");
        assert_eq!(report.arms.len(), 5);
        for a in &report.arms {
            assert_eq!(a.values.len(), 3);
        }
        let tsv = report.table().to_tsv();
        assert!(tsv.contains("speedup"), "{tsv}");
        assert!(tsv.contains("TOTAL"), "{tsv}");
    }
}
