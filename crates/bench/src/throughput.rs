//! Simulator-throughput measurement (the `perf` binary).
//!
//! The paper's figures sweep dozens of configurations through the
//! cycle-accurate model, so *simulator* throughput — sim-cycles/sec and
//! µops/sec of wall-clock time — bounds how many scenarios are
//! explorable. This module measures it: every benchmark runs twice on
//! identical configurations, once with the naive every-cycle system loop
//! ([`SimConfig::fast_forward`] off) and once with idle-stretch
//! fast-forwarding (the default), and the two [`SimResult`]s are
//! asserted bit-identical before any rate is reported. The output rides
//! the existing [`Report`] machinery: `BENCH_throughput.json` lands in
//! the report directory next to the figure reports.
//!
//! Runs are strictly serial — parallel workers would share memory
//! bandwidth and turn the wall-clock numbers into noise.

use crate::report::{ArmReport, Layout, Report, RunSummary};
use bosim::{prefetchers, SimConfig, SimResult, System};
use bosim_trace::BenchmarkSpec;
use std::time::Instant;

/// One timed simulation: simulated work per second of wall clock.
#[derive(Debug, Clone)]
pub struct ThroughputMeasurement {
    /// Benchmark name.
    pub benchmark: String,
    /// Total simulated cycles (warm-up + measured window).
    pub sim_cycles: u64,
    /// Cycles actually stepped (the rest were fast-forwarded).
    pub steps: u64,
    /// Total µops retired by core 0 (warm-up + measured window).
    pub uops: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// The measured-window result (for the invariance check).
    pub result: SimResult,
}

impl ThroughputMeasurement {
    /// Simulated megacycles per wall-clock second.
    pub fn mcycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_seconds / 1e6
    }

    /// Retired µops (core 0) per wall-clock second, in millions.
    pub fn muops_per_sec(&self) -> f64 {
        self.uops as f64 / self.wall_seconds / 1e6
    }
}

/// Runs `bench` once under `cfg` and times it.
pub fn measure(cfg: &SimConfig, bench: &BenchmarkSpec) -> ThroughputMeasurement {
    let mut sys = System::new(cfg, bench);
    let start = Instant::now();
    let result = sys.run();
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    ThroughputMeasurement {
        benchmark: bench.name.clone(),
        sim_cycles: sys.cycle(),
        steps: sys.steps_executed(),
        uops: sys.core0_stats().retired,
        wall_seconds: wall,
        result,
    }
}

/// A naive/optimized measurement pair for one benchmark.
#[derive(Debug, Clone)]
pub struct ThroughputPair {
    /// Every-cycle loop (`fast_forward` off).
    pub naive: ThroughputMeasurement,
    /// Fast-forwarding loop (`fast_forward` on).
    pub optimized: ThroughputMeasurement,
}

impl ThroughputPair {
    /// Optimized over naive sim-cycles/sec.
    pub fn speedup(&self) -> f64 {
        self.optimized.mcycles_per_sec() / self.naive.mcycles_per_sec()
    }
}

/// Measures the whole `benches` grid: `reps` interleaved naive and
/// optimized runs per benchmark, keeping the fastest wall-clock run of
/// each mode (the minimum rejects scheduler and frequency noise, which
/// only ever slows a run down). A short discarded simulation up front
/// absorbs process start-up costs so neither mode pays them.
///
/// # Panics
///
/// Panics if any benchmark's naive and optimized runs disagree on any
/// counter of the measured window — fast-forwarding must be invisible
/// in the results, and a throughput number for a *different* simulation
/// would be meaningless.
pub fn measure_suite(
    base: &SimConfig,
    benches: &[BenchmarkSpec],
    reps: usize,
) -> Vec<ThroughputPair> {
    let reps = reps.max(1);
    if let Some(first) = benches.first() {
        let mut warm = base.clone();
        warm.warmup_instructions = 5_000;
        warm.measure_instructions = 20_000;
        let _ = measure(&warm, first);
    }
    let mut naive_cfg = base.clone();
    naive_cfg.fast_forward = false;
    naive_cfg.naive_hot_path = true;
    let mut opt_cfg = base.clone();
    opt_cfg.fast_forward = true;
    opt_cfg.naive_hot_path = false;
    benches
        .iter()
        .map(|bench| {
            let fastest = |best: Option<ThroughputMeasurement>, m: ThroughputMeasurement| match best
            {
                Some(b) if b.wall_seconds <= m.wall_seconds => Some(b),
                _ => Some(m),
            };
            let mut naive: Option<ThroughputMeasurement> = None;
            let mut optimized: Option<ThroughputMeasurement> = None;
            for _ in 0..reps {
                let n = measure(&naive_cfg, bench);
                let o = measure(&opt_cfg, bench);
                assert_eq!(
                    n.result, o.result,
                    "{}: fast-forward must be cycle-exact",
                    bench.name
                );
                assert_eq!(n.sim_cycles, o.sim_cycles, "{}", bench.name);
                naive = fastest(naive, n);
                optimized = fastest(optimized, o);
            }
            ThroughputPair {
                naive: naive.expect("reps >= 1"), // bosim-lint: allow(P002, reps >= 1 so both arms ran)
                optimized: optimized.expect("reps >= 1"), // bosim-lint: allow(P002, reps >= 1 so both arms ran)
            }
        })
        .collect()
}

/// One machine configuration's worth of throughput pairs, labelled for
/// the report.
#[derive(Debug, Clone)]
pub struct ArmThroughput {
    /// The machine label heading this arm's rows (`default`, `4-core`,
    /// `l2:bo`).
    pub label: String,
    /// The measured configuration.
    pub config: SimConfig,
    /// One naive/optimized pair per benchmark.
    pub pairs: Vec<ThroughputPair>,
}

/// The machine configurations the `perf` binary times: the Table 1
/// default, a four-core machine (parallel-tick territory, much less
/// idle time to skip) and an `l2:bo` machine (the paper's subject
/// prefetcher, busier uncore queues).
pub fn perf_arms(base: &SimConfig) -> Vec<(String, SimConfig)> {
    let four_core = SimConfig {
        active_cores: 4,
        ..base.clone()
    };
    let bo = base.clone().with_prefetcher(prefetchers::bo_default());
    vec![
        ("default".to_string(), base.clone()),
        ("4-core".to_string(), four_core),
        ("l2:bo".to_string(), bo),
    ]
}

/// Aggregate optimized-over-naive speedup across every arm: total
/// simulated cycles over total wall seconds, both modes summed over all
/// arms and benchmarks. The CI floor (`BOSIM_PERF_MIN_SPEEDUP`) gates
/// on this number.
pub fn aggregate_speedup(arms: &[ArmThroughput]) -> f64 {
    let naive: Vec<&ThroughputMeasurement> = arms
        .iter()
        .flat_map(|a| a.pairs.iter().map(|p| &p.naive))
        .collect();
    let optimized: Vec<&ThroughputMeasurement> = arms
        .iter()
        .flat_map(|a| a.pairs.iter().map(|p| &p.optimized))
        .collect();
    total_mcycles_per_sec(&optimized) / total_mcycles_per_sec(&naive)
}

/// Aggregate rate: total simulated cycles over total wall seconds.
fn total_mcycles_per_sec(ms: &[&ThroughputMeasurement]) -> f64 {
    let cycles: u64 = ms.iter().map(|m| m.sim_cycles).sum();
    let wall: f64 = ms.iter().map(|m| m.wall_seconds).sum();
    cycles as f64 / wall.max(1e-9) / 1e6
}

fn total_muops_per_sec(ms: &[&ThroughputMeasurement]) -> f64 {
    let uops: u64 = ms.iter().map(|m| m.uops).sum();
    let wall: f64 = ms.iter().map(|m| m.wall_seconds).sum();
    uops as f64 / wall.max(1e-9) / 1e6
}

/// Builds the `BENCH_throughput` report: one column per benchmark plus
/// a `TOTAL` column (aggregate rates, not means), and per machine arm
/// one row per metric. Each arm's `speedup` row's `TOTAL` cell is that
/// machine's headline number: optimized over naive aggregate
/// sim-cycles/sec.
///
/// # Panics
///
/// Panics when `arms` is empty or the arms measured different
/// benchmark lists — the columns would not line up.
pub fn throughput_report(arms: &[ArmThroughput]) -> Report {
    let first = arms.first().expect("at least one throughput arm"); // bosim-lint: allow(P002, harness misuse; the perf binary always passes arms)
                                                                    // Full benchmark names: a bare numeric prefix ("462") reads as a
                                                                    // data point in a throughput table, not a label.
    let mut benchmarks: Vec<String> = first
        .pairs
        .iter()
        .map(|p| p.naive.benchmark.clone())
        .collect();
    benchmarks.push("TOTAL".to_string());

    let mut rows: Vec<ArmReport> = Vec::with_capacity(arms.len() * 5);
    for a in arms {
        assert_eq!(
            a.pairs.len(),
            first.pairs.len(),
            "arm {} measured a different benchmark list",
            a.label
        );
        let naive: Vec<&ThroughputMeasurement> = a.pairs.iter().map(|p| &p.naive).collect();
        let optimized: Vec<&ThroughputMeasurement> = a.pairs.iter().map(|p| &p.optimized).collect();

        let arm = |series: String, values: Vec<f64>, runs: &[&ThroughputMeasurement]| ArmReport {
            series,
            group: None,
            config: a.config.label(),
            baseline: None,
            values,
            gm: None,
            runs: runs.iter().map(|m| RunSummary::from(&m.result)).collect(),
        };
        let rates =
            |ms: &[&ThroughputMeasurement], f: fn(&ThroughputMeasurement) -> f64, total: f64| {
                let mut v: Vec<f64> = ms.iter().map(|m| f(m)).collect();
                v.push(total);
                v
            };
        let mut speedups: Vec<f64> = a.pairs.iter().map(ThroughputPair::speedup).collect();
        speedups.push(total_mcycles_per_sec(&optimized) / total_mcycles_per_sec(&naive));

        rows.push(arm(
            format!("{} naive Mcyc/s", a.label),
            rates(
                &naive,
                ThroughputMeasurement::mcycles_per_sec,
                total_mcycles_per_sec(&naive),
            ),
            &naive,
        ));
        rows.push(arm(
            format!("{} opt Mcyc/s", a.label),
            rates(
                &optimized,
                ThroughputMeasurement::mcycles_per_sec,
                total_mcycles_per_sec(&optimized),
            ),
            &optimized,
        ));
        rows.push(arm(
            format!("{} naive Muops/s", a.label),
            rates(
                &naive,
                ThroughputMeasurement::muops_per_sec,
                total_muops_per_sec(&naive),
            ),
            &naive,
        ));
        rows.push(arm(
            format!("{} opt Muops/s", a.label),
            rates(
                &optimized,
                ThroughputMeasurement::muops_per_sec,
                total_muops_per_sec(&optimized),
            ),
            &optimized,
        ));
        rows.push(arm(format!("{} speedup", a.label), speedups, &optimized));
    }

    Report {
        name: "BENCH_throughput".to_string(),
        title: format!(
            "Simulator throughput, {} machine arms (naive vs optimized)",
            arms.len()
        ),
        metric: "sim-Mcycles/s".to_string(),
        benchmarks,
        arms: rows,
        layout: Layout::ArmRows,
        with_gm: false,
        decimals: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bosim_trace::suite;

    #[test]
    fn measure_pairs_are_invariant_and_report_shapes_up() {
        let cfg = SimConfig {
            warmup_instructions: 2_000,
            measure_instructions: 10_000,
            ..Default::default()
        };
        let benches = vec![
            suite::benchmark("462").expect("exists"),
            suite::benchmark("444").expect("exists"),
        ];
        let pairs = measure_suite(&cfg, &benches, 1);
        assert_eq!(pairs.len(), 2);
        for p in &pairs {
            assert!(p.naive.sim_cycles > 0);
            assert!(p.naive.wall_seconds > 0.0);
            assert!(p.speedup() > 0.0);
        }
        let arms = vec![ArmThroughput {
            label: "default".to_string(),
            config: cfg,
            pairs,
        }];
        assert!(aggregate_speedup(&arms) > 0.0);
        let report = throughput_report(&arms);
        assert_eq!(report.name, "BENCH_throughput");
        assert_eq!(report.benchmarks.len(), 3, "two benchmarks plus TOTAL");
        assert_eq!(report.arms.len(), 5, "five metric rows per machine arm");
        for a in &report.arms {
            assert_eq!(a.values.len(), 3);
        }
        let tsv = report.table().to_tsv();
        assert!(tsv.contains("default speedup"), "{tsv}");
        assert!(tsv.contains("TOTAL"), "{tsv}");
    }

    #[test]
    fn perf_arms_cover_multicore_and_bo() {
        let arms = perf_arms(&SimConfig::default());
        let labels: Vec<&str> = arms.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["default", "4-core", "l2:bo"]);
        assert_eq!(arms[1].1.active_cores, 4);
        assert!(arms[2].1.label().ends_with("/BO"), "{}", arms[2].1.label());
    }
}
