//! Figure 11: BO vs SBP (geometric mean speedups relative to the
//! next-line baselines).
use bosim::{prefetchers, SimConfig};
use bosim_bench::{six_baseline_gm_variants, VariantFn};

fn main() {
    let variants: Vec<(String, VariantFn)> = vec![
        (
            "BO".to_string(),
            Box::new(|p, n| SimConfig::baseline(p, n).with_prefetcher(prefetchers::bo_default())),
        ),
        (
            "SBP".to_string(),
            Box::new(|p, n| SimConfig::baseline(p, n).with_prefetcher(prefetchers::sbp_default())),
        ),
    ];
    six_baseline_gm_variants(
        "fig11_bo_vs_sbp",
        "Figure 11: BO vs SBP (GM speedup)",
        &variants,
    )
    .run_and_emit();
}
