//! Figure 11: BO vs SBP (geometric mean speedups relative to the
//! next-line baselines).
use bosim::{L2PrefetcherKind, SimConfig};
use bosim_bench::gm_variants_figure;
use bosim_types::PageSize;

fn main() {
    let variants: Vec<(String, Box<dyn Fn(PageSize, usize) -> SimConfig>)> = vec![
        (
            "BO".to_string(),
            Box::new(|p, n| {
                SimConfig::baseline(p, n)
                    .with_prefetcher(L2PrefetcherKind::Bo(Default::default()))
            }),
        ),
        (
            "SBP".to_string(),
            Box::new(|p, n| {
                SimConfig::baseline(p, n)
                    .with_prefetcher(L2PrefetcherKind::Sbp(Default::default()))
            }),
        ),
    ];
    gm_variants_figure("Figure 11: BO vs SBP (GM speedup)", &variants).print();
}
