//! Table 1: the baseline micro-architecture parameters, printed from the
//! live configuration objects so the table can never drift from the code.
use bosim::SimConfig;
use bosim_dram::DdrTimings;
use bosim_stats::Table;

fn main() {
    let c = SimConfig::default();
    let t = DdrTimings::default();
    let mut tab = Table::new(["parameter", "value"]);
    tab.row(vec!["clock freq.".to_string(), "fixed".to_string()]);
    tab.row(vec![
        "branch pred.".to_string(),
        "TAGE & ITTAGE".to_string(),
    ]);
    tab.row(vec![
        "reorder buffer".to_string(),
        format!("{} micro-ops", c.core.rob_size),
    ]);
    tab.row(vec![
        "decode".to_string(),
        format!("{} instructions / cycle", c.core.dispatch_width),
    ]);
    tab.row(vec![
        "retire".to_string(),
        format!("{} micro-ops / cycle", c.core.retire_width),
    ]);
    tab.row(vec![
        "load ports".to_string(),
        format!("{}", c.core.load_ports),
    ]);
    tab.row(vec![
        "exec ports".to_string(),
        format!("{} INT, {} FP", c.core.int_ports, c.core.fp_ports),
    ]);
    tab.row(vec![
        "branch misp. penalty".to_string(),
        format!(
            "{} cycles (minimum), redirect at execution",
            c.core.mispredict_penalty
        ),
    ]);
    tab.row(vec![
        "MSHR".to_string(),
        format!("{} DL1 block requests", c.core.mshrs),
    ]);
    tab.row(vec![
        "store buffer".to_string(),
        format!("{} stores", c.core.store_buffer),
    ]);
    tab.row(vec!["cache line".to_string(), "64 bytes".to_string()]);
    tab.row(vec![
        "IL1".to_string(),
        format!("{}KB, {}-way LRU", c.core.il1_size >> 10, c.core.il1_ways),
    ]);
    tab.row(vec![
        "DL1".to_string(),
        format!(
            "{}KB, {}-way LRU, {}-cycle lat.",
            c.core.dl1_size >> 10,
            c.core.dl1_ways,
            c.core.dl1_latency
        ),
    ]);
    tab.row(vec![
        "L2 (private)".to_string(),
        format!(
            "{}KB, {}-way LRU, {}-cycle lat., {}-entry fill queue",
            c.l2_size >> 10,
            c.l2_ways,
            c.l2_latency,
            c.l2_fill_queue
        ),
    ]);
    tab.row(vec![
        "L3 (shared)".to_string(),
        format!(
            "{}MB, {}-way {}, {}-cycle lat., {}-entry fill queue",
            c.l3_size >> 20,
            c.l3_ways,
            c.l3_policy.label(),
            c.l3_latency,
            c.l3_fill_queue
        ),
    ]);
    tab.row(vec![
        "L2 prefetch queue".to_string(),
        format!("{} entries", c.prefetch_queue),
    ]);
    tab.row(vec![
        "TLB entries".to_string(),
        "ITLB1: 64, DTLB1: 64, TLB2: 512".to_string(),
    ]);
    tab.row(vec![
        "memory".to_string(),
        "2 channels, 1 controller/channel, 8 banks, FR-FCFS + steady/urgent".to_string(),
    ]);
    tab.row(vec![
        "DDR3 param. (bus cycles)".to_string(),
        format!(
            "tCL={}, tRCD={}, tRP={}, tRAS={}, tCWL={}, tRTP={}, tWR={}, tWTR={}, tBURST={}",
            t.t_cl, t.t_rcd, t.t_rp, t.t_ras, t.t_cwl, t.t_rtp, t.t_wr, t.t_wtr, t.t_burst
        ),
    ]);
    tab.row(vec![
        "memory controller".to_string(),
        "32-entry read + 32-entry write queue per core, 16-write batches".to_string(),
    ]);
    tab.row(vec![
        "DL1 prefetch".to_string(),
        "stride prefetcher, 64 entries, distance 16".to_string(),
    ]);
    tab.row(vec![
        "L2 prefetch".to_string(),
        "next-line prefetcher (baseline)".to_string(),
    ]);
    tab.row(vec!["page size".to_string(), "4KB / 4MB".to_string()]);
    tab.row(vec!["active cores".to_string(), "1 / 2 / 4".to_string()]);
    println!("# Table 1: baseline microarchitecture");
    print!("{}", tab.to_tsv());
    println!();
    println!("{tab}");
}
