//! Static vs adaptive prefetch control (the `bosim-adapt` experiment).
//!
//! Runs the phase-shifting synthetic workload (plus a streaming and a
//! pointer-chasing SPEC-like benchmark for context) under four static
//! prefetcher configurations and the three built-in tuning policies,
//! reporting raw IPC per arm. The adaptive runs carry their full
//! per-epoch telemetry (accuracy / coverage / lateness / bus occupancy,
//! the active prefetcher, every directive) into the report JSON, and
//! the tournament's epoch history on the phase workload is printed as a
//! table.
//!
//! The binary is also the CI adaptive smoke arm: it re-checks the
//! telemetry counter invariants (cumulative `useful + unused-evicted <=
//! prefetch fills`, rates within `[0, 1]`, consecutive epochs) on every
//! adaptive run and exits non-zero on any violation.
//!
//! Run with: `cargo run --release -p bosim-bench --bin adaptive`

use best_offset::BoConfig;
use bosim::adapt::{policies, AdaptConfig, TournamentSpec};
use bosim::{prefetchers, SimConfig};
use bosim_bench::{Experiment, Metric};
use bosim_trace::suite;
use bosim_types::PageSize;

/// Epoch length used by every adaptive arm (about 60–80 DRAM round
/// trips: long enough for usefulness counters to resolve, short enough
/// to track the workload's phases).
const EPOCH_CYCLES: u64 = 8_000;

fn main() {
    let base = SimConfig::baseline(PageSize::M4, 1);
    let adaptive = |cfg: SimConfig, policy: bosim::adapt::PolicyHandle| {
        let mut c = cfg;
        c.adapt = Some(AdaptConfig::new(policy).epoch_cycles(EPOCH_CYCLES));
        c
    };
    let bo2 = prefetchers::bo(BoConfig {
        degree: 2,
        ..Default::default()
    });
    let mut tournament = TournamentSpec::new(["offset-8", "none"]);
    tournament.exploit_epochs = 10;

    let report = Experiment::new(
        "adaptive",
        "Static vs adaptive prefetch control: IPC per arm",
    )
    .benchmarks(vec![
        suite::phase_shift(),
        suite::benchmark("462").expect("libquantum-like"),
        suite::benchmark("429").expect("mcf-like"),
    ])
    .metric(Metric::Ipc)
    .arm(
        "no-prefetch",
        base.clone().with_prefetcher(prefetchers::none()),
    )
    .arm(
        "offset-8",
        base.clone().with_prefetcher(prefetchers::fixed(8)),
    )
    .arm(
        "BO",
        base.clone().with_prefetcher(prefetchers::bo_default()),
    )
    .arm("BO-deg2", base.clone().with_prefetcher(bo2))
    .arm(
        "tournament",
        adaptive(
            base.clone().with_prefetcher(prefetchers::none()),
            tournament.into(),
        ),
    )
    .arm(
        "governor",
        adaptive(
            base.clone().with_prefetcher(prefetchers::bo_default()),
            policies::degree_governor(),
        ),
    )
    .arm(
        "bw-throttle",
        adaptive(
            base.with_prefetcher(prefetchers::bo_default()),
            policies::bandwidth_throttle(),
        ),
    )
    .run_and_emit();

    // Print the tournament's epoch history on the phase workload: the
    // human-readable view of what the policy did and why.
    if let Some(run) = report
        .arms
        .iter()
        .find(|a| a.series == "tournament")
        .and_then(|a| a.runs.iter().find(|r| r.benchmark.starts_with("phase")))
    {
        if let Some(telemetry) = &run.adapt {
            println!("# tournament on {}: epoch history", run.benchmark);
            println!("{}", telemetry.table());
        }
    }

    // CI smoke: telemetry invariants must hold on every adaptive run.
    let mut violations = 0;
    for arm in &report.arms {
        for run in &arm.runs {
            if let Some(telemetry) = &run.adapt {
                if let Err(e) = telemetry.check_invariants() {
                    eprintln!(
                        "[bosim] telemetry invariant violated ({} on {}): {e}",
                        arm.series, run.benchmark
                    );
                    violations += 1;
                }
            }
        }
    }
    if violations > 0 {
        std::process::exit(1);
    }
    eprintln!("[bosim] adaptive telemetry invariants hold on every adaptive run");
}
