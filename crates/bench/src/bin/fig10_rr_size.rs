//! Figure 10: impact of the RR table size (GM speedup over the next-line
//! baselines).
use best_offset::BoConfig;
use bosim::{prefetchers, SimConfig};
use bosim_bench::{six_baseline_gm_variants, VariantFn};

fn main() {
    let variants: Vec<(String, VariantFn)> = [32usize, 64, 128, 256, 512]
        .iter()
        .map(|&rr| {
            let f: VariantFn = Box::new(move |p, n| {
                let cfg = BoConfig {
                    rr_entries: rr,
                    ..Default::default()
                };
                SimConfig::baseline(p, n).with_prefetcher(prefetchers::bo(cfg))
            });
            (format!("RR={rr}"), f)
        })
        .collect();
    six_baseline_gm_variants(
        "fig10_rr_size",
        "Figure 10: RR table size sweep (GM speedup)",
        &variants,
    )
    .run_and_emit();
}
