//! Figure 10: impact of the RR table size (GM speedup over the next-line
//! baselines).
use best_offset::BoConfig;
use bosim::{L2PrefetcherKind, SimConfig};
use bosim_bench::gm_variants_figure;
use bosim_types::PageSize;

fn main() {
    let sizes = [32usize, 64, 128, 256, 512];
    let variants: Vec<(String, Box<dyn Fn(PageSize, usize) -> SimConfig>)> = sizes
        .iter()
        .map(|&rr| {
            let name = format!("RR={rr}");
            let f: Box<dyn Fn(PageSize, usize) -> SimConfig> = Box::new(move |p, n| {
                let cfg = BoConfig { rr_entries: rr, ..Default::default() };
                SimConfig::baseline(p, n).with_prefetcher(L2PrefetcherKind::Bo(cfg))
            });
            (name, f)
        })
        .collect();
    gm_variants_figure("Figure 10: RR table size sweep (GM speedup)", &variants).print();
}
