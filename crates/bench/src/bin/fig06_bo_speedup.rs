//! Figure 6: BO prefetcher speedup relative to the next-line baselines.
use bosim::{L2PrefetcherKind, SimConfig};
use bosim_bench::per_benchmark_speedup_figure;

fn main() {
    let fig = per_benchmark_speedup_figure(
        "Figure 6: BO prefetcher speedup over next-line",
        |page, cores| {
            SimConfig::baseline(page, cores)
                .with_prefetcher(L2PrefetcherKind::Bo(Default::default()))
        },
    );
    fig.print();
}
