//! Figure 6: BO prefetcher speedup relative to the next-line baselines.
use bosim::{prefetchers, SimConfig};
use bosim_bench::six_baseline_speedup;

fn main() {
    six_baseline_speedup(
        "fig06_bo_speedup",
        "Figure 6: BO prefetcher speedup over next-line",
        |page, cores| SimConfig::baseline(page, cores).with_prefetcher(prefetchers::bo_default()),
    )
    .run_and_emit();
}
