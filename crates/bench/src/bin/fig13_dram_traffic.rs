//! Figure 13: DRAM accesses per 1000 instructions for no-prefetch,
//! next-line, BO and SBP (4KB pages, 1 active core, memory-intensive
//! subset).
use bosim::{run_jobs, Job, L2PrefetcherKind, SimConfig};
use bosim_bench::{short_label, threads, Figure};
use bosim_trace::suite;
use bosim_types::PageSize;

fn main() {
    let benches: Vec<_> = suite::fig13_subset()
        .iter()
        .map(|id| suite::benchmark(id).expect("subset id"))
        .collect();
    let base = SimConfig::baseline(PageSize::K4, 1);
    let variants = [
        ("no-prefetch", L2PrefetcherKind::None),
        ("next-line", L2PrefetcherKind::NextLine),
        ("BO", L2PrefetcherKind::Bo(Default::default())),
        ("SBP", L2PrefetcherKind::Sbp(Default::default())),
    ];
    let mut jobs = Vec::new();
    for b in &benches {
        for (_, kind) in &variants {
            jobs.push(Job {
                bench: b.clone(),
                config: base.clone().with_prefetcher(kind.clone()),
            });
        }
    }
    let results = run_jobs(&jobs, threads());
    let series = variants.iter().map(|(n, _)| n.to_string()).collect();
    let mut fig = Figure::new(
        "Figure 13: DRAM accesses per 1000 instructions (4KB, 1 core)",
        series,
    );
    fig.with_gm = false;
    fig.decimals = 1;
    for (bi, b) in benches.iter().enumerate() {
        let vals = (0..variants.len())
            .map(|vi| results[bi * variants.len() + vi].dram_accesses_per_ki())
            .collect();
        fig.row(short_label(&b.name), vals);
    }
    fig.print();
}
