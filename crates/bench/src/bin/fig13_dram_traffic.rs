//! Figure 13: DRAM accesses per 1000 instructions for no-prefetch,
//! next-line, BO and SBP (4KB pages, 1 active core, memory-intensive
//! subset).
use bosim::{prefetchers, PrefetcherHandle, SimConfig};
use bosim_bench::{Experiment, Metric};
use bosim_trace::suite;
use bosim_types::PageSize;

fn main() {
    let base = SimConfig::baseline(PageSize::K4, 1);
    let variants: [(&str, PrefetcherHandle); 4] = [
        ("no-prefetch", prefetchers::none()),
        ("next-line", prefetchers::next_line()),
        ("BO", prefetchers::bo_default()),
        ("SBP", prefetchers::sbp_default()),
    ];
    let mut e = Experiment::new(
        "fig13_dram_traffic",
        "Figure 13: DRAM accesses per 1000 instructions (4KB, 1 core)",
    )
    .benchmark_ids(&suite::fig13_subset())
    .metric(Metric::DramPerKi)
    .gm(false)
    .decimals(1);
    for (name, handle) in variants {
        e = e.arm(name, base.clone().with_prefetcher(handle));
    }
    e.run_and_emit();
}
