//! External-trace ingestion smoke (the CI ingest arm).
//!
//! Proves the whole ingestion path end to end without any external
//! input: capture a synthetic prefix, write it out in every supported
//! on-disk format (native, ChampSim, text and binary address traces),
//! replay each file through the full machine as a file-backed
//! [`BenchmarkSpec`] with a warm-up sampling plan, and check the
//! counter invariants on every run:
//!
//! * `l2_hits + l2_prefetched_hits + l2_misses == l2_accesses`
//!   (L2 classification is synchronous, so this holds at any time),
//! * `l3_hits + l3_misses == l3_accesses` at quiescence
//!   ([`System::drain_uncore`]; L3 classification is deferred to the
//!   servicing arrival, so in-flight requests are unclassified),
//! * per-site `useful + unused_evicted <= prefetch_fills`
//!   ([`SimResult::check_site_invariants`]),
//! * naive == fast-forward bit-identity on the file-backed trace.
//!
//! Exits non-zero on any violation; writes `ingest.json` under
//! `BOSIM_REPORT_DIR` (default `target/reports`).
//!
//! Run with: `cargo run --release -p bosim-bench --bin ingest`

use bosim::{SimConfig, SimResult, System};
use bosim_bench::Experiment;
use bosim_trace::{
    addr, capture, champsim, file, suite, BenchmarkSpec, ExternalSpec, SampleSpec, TraceFormat,
};

fn check(sys: &mut System, res: &SimResult, what: &str) -> bool {
    let mut ok = true;
    let classified = res.uncore.l2_hits + res.uncore.l2_prefetched_hits + res.uncore.l2_misses;
    if classified != res.uncore.l2_accesses {
        eprintln!(
            "[ingest] INVARIANT VIOLATION ({what}): l2 hits {} + prefetched {} + misses {} \
             != accesses {}",
            res.uncore.l2_hits,
            res.uncore.l2_prefetched_hits,
            res.uncore.l2_misses,
            res.uncore.l2_accesses
        );
        ok = false;
    }
    if let Err(e) = res.check_site_invariants() {
        eprintln!("[ingest] INVARIANT VIOLATION ({what}): {e}");
        ok = false;
    }
    // At quiescence every L3 access has been classified: exact equality.
    let drained = sys.drain_uncore();
    if drained.l3_hits + drained.l3_misses != drained.l3_accesses {
        eprintln!(
            "[ingest] INVARIANT VIOLATION ({what}): drained l3 hits {} + misses {} != accesses {}",
            drained.l3_hits, drained.l3_misses, drained.l3_accesses
        );
        ok = false;
    }
    ok
}

fn main() {
    let dir = std::env::temp_dir().join(format!("bosim_ingest_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // One synthetic prefix, four on-disk formats.
    let uops = capture(
        &mut suite::benchmark("462").expect("exists").build(),
        120_000,
    );
    let accesses = addr::accesses_of(&uops);
    let native = dir.join("smoke.btrace");
    std::fs::write(&native, file::encode(&uops)).expect("write native");
    let cs = dir.join("smoke.champsim");
    std::fs::write(&cs, champsim::encode(&uops)).expect("write champsim");
    let at = dir.join("smoke.addr");
    std::fs::write(&at, addr::encode_text(&accesses)).expect("write addr text");
    let ab = dir.join("smoke.addrbin");
    std::fs::write(&ab, addr::encode_binary(&accesses)).expect("write addr bin");

    let benchmarks: Vec<BenchmarkSpec> = [
        (&native, TraceFormat::Native, "462-native"),
        (&cs, TraceFormat::ChampSim, "462-champsim"),
        (&at, TraceFormat::AddrText, "462-addr-text"),
        (&ab, TraceFormat::AddrBin, "462-addr-bin"),
    ]
    .into_iter()
    .map(|(path, format, name)| {
        BenchmarkSpec::from_trace(ExternalSpec::new(path, format).named(name))
    })
    .collect();

    // Replay every format through BO vs no-prefetch, with a warm-up
    // sampling plan on the trace itself.
    let window = SimConfig {
        warmup_instructions: 10_000,
        measure_instructions: 50_000,
        sample: Some(SampleSpec::skip(5_000)),
        ..Default::default()
    };
    let bo = SimConfig::builder()
        .prefetcher(bosim::prefetchers::bo_default())
        .build()
        .expect("valid");
    let report = Experiment::new(
        "ingest",
        "External-trace ingestion smoke: BO vs no-prefetch",
    )
    .benchmarks(benchmarks.clone())
    .arm_vs(
        "BO",
        SimConfig {
            l2_prefetcher: bo.l2_prefetcher.clone(),
            ..window.clone()
        },
        SimConfig {
            l2_prefetcher: bosim::prefetchers::none(),
            ..window.clone()
        },
    )
    .run_and_emit();

    let mut ok = true;
    for arm in &report.arms {
        for run in &arm.runs {
            // The retire stage is 12-wide, so a window may overshoot
            // its target by up to one retire group.
            if run.instructions < 50_000 || run.instructions >= 50_012 {
                eprintln!(
                    "[ingest] INVARIANT VIOLATION: {} measured {} instructions, wanted 50000..50012",
                    run.benchmark, run.instructions
                );
                ok = false;
            }
        }
    }

    // Per-run counter invariants + naive == fast-forward bit-identity
    // on the ChampSim-backed benchmark (the golden-stats guarantee must
    // hold for external traces too).
    for bench in &benchmarks {
        let mut sys = System::new(&window, bench);
        let res = sys.run();
        ok &= check(&mut sys, &res, &res.benchmark);
    }
    let champsim_bench = &benchmarks[1];
    let fast = System::new(&window, champsim_bench).run();
    let naive = System::new(
        &SimConfig {
            fast_forward: false,
            naive_hot_path: true,
            ..window.clone()
        },
        champsim_bench,
    )
    .run();
    // Config labels differ only through the hot-path flags (not part of
    // the label); the counters must be bit-identical.
    if fast != naive {
        eprintln!(
            "[ingest] INVARIANT VIOLATION: naive and fast-forward runs diverged on {}",
            champsim_bench.name
        );
        ok = false;
    }

    let _ = std::fs::remove_dir_all(&dir);
    if !ok {
        std::process::exit(1);
    }
    eprintln!("[ingest] all invariants hold");
}
