//! Extension experiment: BO vs SBP vs AMPM-lite (geometric-mean speedup
//! over the next-line baselines). Reproduces the §2 context claim that
//! SBP matches AMPM while BO beats both.
use bosim::{prefetchers, SimConfig};
use bosim_bench::{six_baseline_gm_variants, VariantFn};

fn main() {
    let variants: Vec<(String, VariantFn)> = vec![
        (
            "BO".to_string(),
            Box::new(|p, n| SimConfig::baseline(p, n).with_prefetcher(prefetchers::bo_default())),
        ),
        (
            "SBP".to_string(),
            Box::new(|p, n| SimConfig::baseline(p, n).with_prefetcher(prefetchers::sbp_default())),
        ),
        (
            "AMPM".to_string(),
            Box::new(|p, n| SimConfig::baseline(p, n).with_prefetcher(prefetchers::ampm_default())),
        ),
    ];
    six_baseline_gm_variants(
        "extra_ampm",
        "Extension: BO vs SBP vs AMPM-lite (GM speedup)",
        &variants,
    )
    .run_and_emit();
}
