//! Extension experiment: BO vs SBP vs AMPM-lite (geometric-mean speedup
//! over the next-line baselines). Reproduces the §2 context claim that
//! SBP matches AMPM while BO beats both.
use bosim::{L2PrefetcherKind, SimConfig};
use bosim_bench::gm_variants_figure;
use bosim_types::PageSize;

fn main() {
    let variants: Vec<(String, Box<dyn Fn(PageSize, usize) -> SimConfig>)> = vec![
        (
            "BO".to_string(),
            Box::new(|p, n| {
                SimConfig::baseline(p, n).with_prefetcher(L2PrefetcherKind::Bo(Default::default()))
            }),
        ),
        (
            "SBP".to_string(),
            Box::new(|p, n| {
                SimConfig::baseline(p, n).with_prefetcher(L2PrefetcherKind::Sbp(Default::default()))
            }),
        ),
        (
            "AMPM".to_string(),
            Box::new(|p, n| {
                SimConfig::baseline(p, n).with_prefetcher(L2PrefetcherKind::Ampm(Default::default()))
            }),
        ),
    ];
    gm_variants_figure("Extension: BO vs SBP vs AMPM-lite (GM speedup)", &variants).print();
}
