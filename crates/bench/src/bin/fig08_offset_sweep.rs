//! Figure 8: fixed-offset prefetching with offsets 2..256 on benchmarks
//! 433, 459, 470 and 462 (4MB pages, 1 active core), with the BO speedup
//! as the reference line. `BOSIM_OFFSET_STEP` controls the sweep step.
use bosim::{run_jobs, Job, L2PrefetcherKind, SimConfig};
use bosim_bench::{short_label, threads, Figure};
use bosim_trace::suite;
use bosim_types::PageSize;

fn main() {
    let step: i64 = std::env::var("BOSIM_OFFSET_STEP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let ids = ["433", "459", "470", "462"];
    let benches: Vec<_> = ids
        .iter()
        .map(|id| suite::benchmark(id).expect("figure 8 benchmark"))
        .collect();
    let base = SimConfig::baseline(PageSize::M4, 1);
    let mut offsets: Vec<i64> = (2..=256).step_by(step.max(1) as usize).collect();
    if !offsets.contains(&256) {
        offsets.push(256);
    }
    // Jobs: baseline (next-line), BO, then every fixed offset, per bench.
    let mut jobs = Vec::new();
    for b in &benches {
        jobs.push(Job { bench: b.clone(), config: base.clone() });
        jobs.push(Job {
            bench: b.clone(),
            config: base.clone().with_prefetcher(L2PrefetcherKind::Bo(Default::default())),
        });
        for &d in &offsets {
            jobs.push(Job {
                bench: b.clone(),
                config: base.clone().with_prefetcher(L2PrefetcherKind::Fixed(d)),
            });
        }
    }
    eprintln!("[bosim] fig8: {} jobs (step {step})", jobs.len());
    let results = run_jobs(&jobs, threads());
    let per_bench = 2 + offsets.len();
    let series = benches.iter().map(|b| short_label(&b.name)).collect();
    let mut fig = Figure::new(
        "Figure 8: fixed-offset sweep, 4MB pages, 1 core (speedup vs next-line)",
        series,
    );
    fig.with_gm = false;
    // BO reference line first.
    let mut bo_vals = Vec::new();
    for (bi, _) in benches.iter().enumerate() {
        let base_ipc = results[bi * per_bench].ipc();
        bo_vals.push(results[bi * per_bench + 1].ipc() / base_ipc);
    }
    fig.row("BO", bo_vals);
    for (oi, &d) in offsets.iter().enumerate() {
        let mut vals = Vec::new();
        for (bi, _) in benches.iter().enumerate() {
            let base_ipc = results[bi * per_bench].ipc();
            vals.push(results[bi * per_bench + 2 + oi].ipc() / base_ipc);
        }
        fig.row(format!("D={d}"), vals);
    }
    fig.print();
}
