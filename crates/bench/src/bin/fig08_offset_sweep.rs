//! Figure 8: fixed-offset prefetching with offsets 2..256 on benchmarks
//! 433, 459, 470 and 462 (4MB pages, 1 active core), with the BO speedup
//! as the reference line. `BOSIM_OFFSET_STEP` controls the sweep step.
use bosim::{prefetchers, SimConfig};
use bosim_bench::{Experiment, Layout};
use bosim_types::PageSize;

fn main() {
    let step: i64 = std::env::var("BOSIM_OFFSET_STEP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let mut offsets: Vec<i64> = (2..=256).step_by(step.max(1) as usize).collect();
    if !offsets.contains(&256) {
        offsets.push(256);
    }
    let base = SimConfig::baseline(PageSize::M4, 1);
    let mut e = Experiment::new(
        "fig08_offset_sweep",
        "Figure 8: fixed-offset sweep, 4MB pages, 1 core (speedup vs next-line)",
    )
    .benchmark_ids(&["433", "459", "470", "462"])
    .layout(Layout::ArmRows)
    .gm(false)
    .arm_vs(
        "BO",
        base.clone().with_prefetcher(prefetchers::bo_default()),
        base.clone(),
    );
    for d in offsets {
        e = e.arm_vs(
            format!("D={d}"),
            base.clone().with_prefetcher(prefetchers::fixed(d)),
            base.clone(),
        );
    }
    e.run_and_emit();
}
