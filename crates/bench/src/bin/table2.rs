//! Table 2: BO prefetcher default parameters, printed from `BoConfig`.
use best_offset::BoConfig;
use bosim_stats::Table;

fn main() {
    let c = BoConfig::default();
    let mut tab = Table::new(["parameter", "value"]);
    tab.row(vec![
        "RR table entries".to_string(),
        format!("{}", c.rr_entries),
    ]);
    tab.row(vec![
        "RR tag bits".to_string(),
        format!("{}", c.rr_tag_bits),
    ]);
    tab.row(vec!["SCOREMAX".to_string(), format!("{}", c.score_max)]);
    tab.row(vec!["ROUNDMAX".to_string(), format!("{}", c.round_max)]);
    tab.row(vec!["BADSCORE".to_string(), format!("{}", c.bad_score)]);
    tab.row(vec!["scores".to_string(), format!("{}", c.offsets.len())]);
    let list: Vec<String> = c.offsets.iter().map(|o| o.to_string()).collect();
    tab.row(vec!["offset list".to_string(), list.join(" ")]);
    println!("# Table 2: BO prefetcher default parameters");
    print!("{}", tab.to_tsv());
    println!();
    println!("{tab}");
}
