//! Ablation (beyond the paper): SCOREMAX / ROUNDMAX learning-phase knobs.
use best_offset::BoConfig;
use bosim::{L2PrefetcherKind, SimConfig};
use bosim_bench::gm_variants_figure;
use bosim_types::PageSize;

fn main() {
    let grid = [(15u32, 50u32), (31, 100), (31, 50), (63, 200), (15, 100)];
    let variants: Vec<(String, Box<dyn Fn(PageSize, usize) -> SimConfig>)> = grid
        .iter()
        .map(|&(sm, rm)| {
            let name = format!("SCOREMAX={sm},ROUNDMAX={rm}");
            let f: Box<dyn Fn(PageSize, usize) -> SimConfig> = Box::new(move |p, n| {
                let cfg = BoConfig { score_max: sm, round_max: rm, ..Default::default() };
                SimConfig::baseline(p, n).with_prefetcher(L2PrefetcherKind::Bo(cfg))
            });
            (name, f)
        })
        .collect();
    gm_variants_figure("Ablation: learning phase parameters (GM speedup)", &variants).print();
}
