//! Ablation (beyond the paper): SCOREMAX / ROUNDMAX learning-phase knobs.
use best_offset::BoConfig;
use bosim::{prefetchers, SimConfig};
use bosim_bench::{six_baseline_gm_variants, VariantFn};

fn main() {
    let grid = [(15u32, 50u32), (31, 100), (31, 50), (63, 200), (15, 100)];
    let variants: Vec<(String, VariantFn)> = grid
        .iter()
        .map(|&(sm, rm)| {
            let f: VariantFn = Box::new(move |p, n| {
                let cfg = BoConfig {
                    score_max: sm,
                    round_max: rm,
                    ..Default::default()
                };
                SimConfig::baseline(p, n).with_prefetcher(prefetchers::bo(cfg))
            });
            (format!("SCOREMAX={sm},ROUNDMAX={rm}"), f)
        })
        .collect();
    six_baseline_gm_variants(
        "ablation_learning",
        "Ablation: learning phase parameters (GM speedup)",
        &variants,
    )
    .run_and_emit();
}
