//! Figure 7: BO compared with fixed-offset prefetchers D=2..7 (geometric
//! mean speedup over the next-line baselines).
use bosim::{prefetchers, SimConfig};
use bosim_bench::{six_baseline_gm_variants, VariantFn};

fn main() {
    let mut variants: Vec<(String, VariantFn)> = vec![(
        "BO".to_string(),
        Box::new(|p, n| SimConfig::baseline(p, n).with_prefetcher(prefetchers::bo_default())),
    )];
    for d in 2..=7i64 {
        variants.push((
            format!("D={d}"),
            Box::new(move |p, n| SimConfig::baseline(p, n).with_prefetcher(prefetchers::fixed(d))),
        ));
    }
    six_baseline_gm_variants(
        "fig07_fixed_offsets",
        "Figure 7: BO vs fixed offsets (GM speedup)",
        &variants,
    )
    .run_and_emit();
}
