//! Figure 7: BO compared with fixed-offset prefetchers D=2..7 (geometric
//! mean speedup over the next-line baselines).
use bosim::{L2PrefetcherKind, SimConfig};
use bosim_bench::gm_variants_figure;
use bosim_types::PageSize;

fn main() {
    let mut variants: Vec<(String, Box<dyn Fn(PageSize, usize) -> SimConfig>)> = vec![(
        "BO".to_string(),
        Box::new(|p, n| {
            SimConfig::baseline(p, n).with_prefetcher(L2PrefetcherKind::Bo(Default::default()))
        }),
    )];
    for d in 2..=7i64 {
        variants.push((
            format!("D={d}"),
            Box::new(move |p, n| {
                SimConfig::baseline(p, n).with_prefetcher(L2PrefetcherKind::Fixed(d))
            }),
        ));
    }
    gm_variants_figure("Figure 7: BO vs fixed offsets (GM speedup)", &variants).print();
}
