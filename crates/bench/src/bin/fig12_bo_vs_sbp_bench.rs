//! Figure 12: BO prefetcher speedup relative to SBP, per benchmark.
use bosim::{prefetchers, SimConfig};
use bosim_bench::{cfg_label, six_baselines, Experiment};

fn main() {
    let mut e = Experiment::new(
        "fig12_bo_vs_sbp_bench",
        "Figure 12: BO speedup relative to SBP",
    );
    for (page, cores) in six_baselines() {
        e = e.arm_vs(
            cfg_label(page, cores),
            SimConfig::baseline(page, cores).with_prefetcher(prefetchers::bo_default()),
            SimConfig::baseline(page, cores).with_prefetcher(prefetchers::sbp_default()),
        );
    }
    e.run_and_emit();
}
