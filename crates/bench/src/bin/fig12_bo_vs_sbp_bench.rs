//! Figure 12: BO prefetcher speedup relative to SBP, per benchmark.
use bosim::{L2PrefetcherKind, SimConfig};
use bosim_bench::{cfg_label, run_grid, selected_benchmarks, short_label, six_baselines, Figure};

fn main() {
    let benches = selected_benchmarks();
    let baselines = six_baselines();
    let mut configs = Vec::new();
    for &(p, n) in &baselines {
        configs.push(SimConfig::baseline(p, n).with_prefetcher(L2PrefetcherKind::Sbp(Default::default())));
        configs.push(SimConfig::baseline(p, n).with_prefetcher(L2PrefetcherKind::Bo(Default::default())));
    }
    let grids = run_grid(&benches, &configs);
    let series = baselines.iter().map(|&(p, n)| cfg_label(p, n)).collect();
    let mut fig = Figure::new("Figure 12: BO speedup relative to SBP", series);
    for (bi, b) in benches.iter().enumerate() {
        let vals = (0..baselines.len())
            .map(|ci| grids[ci * 2 + 1][bi].ipc() / grids[ci * 2][bi].ipc())
            .collect();
        fig.row(short_label(&b.name), vals);
    }
    fig.print();
}
