//! Figure 5: impact of disabling the L2 next-line prefetcher (speedups
//! relative to the baselines; below 1.0 means next-line helps).
use bosim::{prefetchers, SimConfig};
use bosim_bench::six_baseline_speedup;

fn main() {
    six_baseline_speedup(
        "fig05_next_line",
        "Figure 5: disabling the L2 next-line prefetcher",
        |page, cores| SimConfig::baseline(page, cores).with_prefetcher(prefetchers::none()),
    )
    .run_and_emit();
}
