//! Figure 5: impact of disabling the L2 next-line prefetcher (speedups
//! relative to the baselines; below 1.0 means next-line helps).
use bosim::{L2PrefetcherKind, SimConfig};
use bosim_bench::per_benchmark_speedup_figure;

fn main() {
    let fig = per_benchmark_speedup_figure(
        "Figure 5: disabling the L2 next-line prefetcher",
        |page, cores| {
            SimConfig::baseline(page, cores).with_prefetcher(L2PrefetcherKind::None)
        },
    );
    fig.print();
}
