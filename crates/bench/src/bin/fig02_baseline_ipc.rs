//! Figure 2: IPC on core 0 for the six baseline configurations
//! (1/2/4 active cores x 4KB/4MB pages), next-line L2 prefetching.
use bosim::SimConfig;
use bosim_bench::{cfg_label, six_baselines, Experiment, Metric};

fn main() {
    let mut e = Experiment::new("fig02_baseline_ipc", "Figure 2: baseline IPC on core 0")
        .metric(Metric::Ipc)
        .gm(false);
    for (page, cores) in six_baselines() {
        e = e.arm(cfg_label(page, cores), SimConfig::baseline(page, cores));
    }
    e.run_and_emit();
}
