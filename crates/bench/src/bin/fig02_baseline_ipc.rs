//! Figure 2: IPC on core 0 for the six baseline configurations
//! (1/2/4 active cores x 4KB/4MB pages), next-line L2 prefetching.
use bosim::SimConfig;
use bosim_bench::{cfg_label, run_grid, selected_benchmarks, short_label, six_baselines, Figure};

fn main() {
    let benches = selected_benchmarks();
    let baselines = six_baselines();
    let configs: Vec<SimConfig> = baselines
        .iter()
        .map(|&(p, n)| SimConfig::baseline(p, n))
        .collect();
    let grids = run_grid(&benches, &configs);
    let series = baselines.iter().map(|&(p, n)| cfg_label(p, n)).collect();
    let mut fig = Figure::new("Figure 2: baseline IPC on core 0", series);
    fig.with_gm = false;
    for (bi, b) in benches.iter().enumerate() {
        let vals = grids.iter().map(|g| g[bi].ipc()).collect();
        fig.row(short_label(&b.name), vals);
    }
    fig.print();
}
