//! Figure 4: impact of disabling the DL1 stride prefetcher (speedups
//! relative to the baselines; below 1.0 means the prefetcher helps).
use bosim::SimConfig;
use bosim_bench::per_benchmark_speedup_figure;

fn main() {
    let fig = per_benchmark_speedup_figure(
        "Figure 4: disabling the DL1 stride prefetcher",
        |page, cores| {
            let mut c = SimConfig::baseline(page, cores);
            c.dl1_stride = false;
            c
        },
    );
    fig.print();
}
