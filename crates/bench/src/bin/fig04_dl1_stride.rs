//! Figure 4: impact of disabling the DL1 stride prefetcher (speedups
//! relative to the baselines; below 1.0 means the prefetcher helps).
use bosim::SimConfig;
use bosim_bench::six_baseline_speedup;

fn main() {
    six_baseline_speedup(
        "fig04_dl1_stride",
        "Figure 4: disabling the DL1 stride prefetcher",
        |page, cores| {
            // The ablation empties the L1D prefetch site (the refactored
            // form of the old `dl1_stride = false` toggle).
            let mut c = SimConfig::baseline(page, cores);
            c.l1_prefetcher = None;
            c
        },
    )
    .run_and_emit();
}
