//! Figure 9: impact of the BADSCORE throttling threshold (GM speedup over
//! the next-line baselines).
use best_offset::BoConfig;
use bosim::{L2PrefetcherKind, SimConfig};
use bosim_bench::gm_variants_figure;
use bosim_types::PageSize;

fn main() {
    let values = [0u32, 1, 2, 5, 10];
    let variants: Vec<(String, Box<dyn Fn(PageSize, usize) -> SimConfig>)> = values
        .iter()
        .map(|&bs| {
            let name = format!("BADSCORE={bs}");
            let f: Box<dyn Fn(PageSize, usize) -> SimConfig> = Box::new(move |p, n| {
                let cfg = BoConfig { bad_score: bs, ..Default::default() };
                SimConfig::baseline(p, n).with_prefetcher(L2PrefetcherKind::Bo(cfg))
            });
            (name, f)
        })
        .collect();
    gm_variants_figure("Figure 9: BADSCORE sweep (GM speedup)", &variants).print();
}
