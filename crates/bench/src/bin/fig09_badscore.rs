//! Figure 9: impact of the BADSCORE throttling threshold (GM speedup over
//! the next-line baselines).
use best_offset::BoConfig;
use bosim::{prefetchers, SimConfig};
use bosim_bench::{six_baseline_gm_variants, VariantFn};

fn main() {
    let variants: Vec<(String, VariantFn)> = [0u32, 1, 2, 5, 10]
        .iter()
        .map(|&bs| {
            let f: VariantFn = Box::new(move |p, n| {
                let cfg = BoConfig {
                    bad_score: bs,
                    ..Default::default()
                };
                SimConfig::baseline(p, n).with_prefetcher(prefetchers::bo(cfg))
            });
            (format!("BADSCORE={bs}"), f)
        })
        .collect();
    six_baseline_gm_variants(
        "fig09_badscore",
        "Figure 9: BADSCORE sweep (GM speedup)",
        &variants,
    )
    .run_and_emit();
}
