//! Ablation (§4.3 discussion): degree-1 vs degree-2 Best-Offset
//! prefetching (best + second-best offsets), GM speedup and the traffic
//! cost.
use best_offset::BoConfig;
use bosim::{L2PrefetcherKind, SimConfig};
use bosim_bench::gm_variants_figure;
use bosim_types::PageSize;

fn main() {
    let variants: Vec<(String, Box<dyn Fn(PageSize, usize) -> SimConfig>)> = vec![
        (
            "BO degree-1".to_string(),
            Box::new(|p, n| {
                SimConfig::baseline(p, n).with_prefetcher(L2PrefetcherKind::Bo(Default::default()))
            }),
        ),
        (
            "BO degree-2".to_string(),
            Box::new(|p, n| {
                let cfg = BoConfig { degree: 2, ..Default::default() };
                SimConfig::baseline(p, n).with_prefetcher(L2PrefetcherKind::Bo(cfg))
            }),
        ),
    ];
    gm_variants_figure("Ablation: BO prefetch degree (GM speedup)", &variants).print();
}
