//! Ablation (§4.3 discussion): degree-1 vs degree-2 Best-Offset
//! prefetching (best + second-best offsets), GM speedup and the traffic
//! cost.
use best_offset::BoConfig;
use bosim::{prefetchers, SimConfig};
use bosim_bench::{six_baseline_gm_variants, VariantFn};

fn main() {
    let variants: Vec<(String, VariantFn)> = vec![
        (
            "BO degree-1".to_string(),
            Box::new(|p, n| SimConfig::baseline(p, n).with_prefetcher(prefetchers::bo_default())),
        ),
        (
            "BO degree-2".to_string(),
            Box::new(|p, n| {
                let cfg = BoConfig {
                    degree: 2,
                    ..Default::default()
                };
                SimConfig::baseline(p, n).with_prefetcher(prefetchers::bo(cfg))
            }),
        ),
    ];
    six_baseline_gm_variants(
        "ablation_degree",
        "Ablation: BO prefetch degree (GM speedup)",
        &variants,
    )
    .run_and_emit();
}
