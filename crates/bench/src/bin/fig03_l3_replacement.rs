//! Figure 3: impact of replacing the baseline 5P L3 policy with LRU and
//! DRRIP (4KB pages; speedups relative to the 5P baselines).
use bosim::SimConfig;
use bosim_bench::Experiment;
use bosim_cache::policy::PolicyKind;
use bosim_types::PageSize;

fn main() {
    for policy in [PolicyKind::Lru, PolicyKind::Drrip] {
        let mut e = Experiment::new(
            format!("fig03_l3_{}", policy.label().to_lowercase()),
            format!("Figure 3: L3 {} vs 5P baseline (4KB)", policy.label()),
        );
        for cores in [1usize, 2, 4] {
            let mut subject = SimConfig::baseline(PageSize::K4, cores);
            subject.l3_policy = policy;
            e = e.arm_vs(
                format!("{cores}-core"),
                subject,
                SimConfig::baseline(PageSize::K4, cores),
            );
        }
        e.run_and_emit();
    }
}
