//! Figure 3: impact of replacing the baseline 5P L3 policy with LRU and
//! DRRIP (4KB pages; speedups relative to the 5P baselines).
use bosim::SimConfig;
use bosim_bench::{run_grid, selected_benchmarks, short_label, Figure};
use bosim_cache::policy::PolicyKind;
use bosim_types::PageSize;

fn main() {
    let benches = selected_benchmarks();
    let cores = [1usize, 2, 4];
    for policy in [PolicyKind::Lru, PolicyKind::Drrip] {
        let mut configs = Vec::new();
        for &n in &cores {
            configs.push(SimConfig::baseline(PageSize::K4, n));
            let mut c = SimConfig::baseline(PageSize::K4, n);
            c.l3_policy = policy;
            configs.push(c);
        }
        let grids = run_grid(&benches, &configs);
        let series = cores.iter().map(|n| format!("{n}-core")).collect();
        let mut fig = Figure::new(
            format!("Figure 3: L3 {} vs 5P baseline (4KB)", policy.label()),
            series,
        );
        for (bi, b) in benches.iter().enumerate() {
            let vals = (0..cores.len())
                .map(|ci| grids[ci * 2 + 1][bi].ipc() / grids[ci * 2][bi].ipc())
                .collect();
            fig.row(short_label(&b.name), vals);
        }
        fig.print();
    }
}
