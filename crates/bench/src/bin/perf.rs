//! `perf` — the simulator-throughput harness.
//!
//! Times every selected benchmark on three machine arms — the Table 1
//! default, a four-core machine and an `l2:bo` machine — twice each: once
//! with the naive every-cycle system loop, once with the event-wheel
//! scheduled loop. The results are asserted bit-identical per pair, and
//! sim-cycles/sec, µops/sec and the optimized/naive speedup are reported
//! per benchmark plus an aggregate `TOTAL` column per arm. The JSON
//! report lands in `BENCH_throughput.json` under the report directory.
//!
//! Environment knobs: `BOSIM_BENCHMARKS`, `BOSIM_INSTRUCTIONS`,
//! `BOSIM_WARMUP`, `BOSIM_REPORT_DIR` (see the crate docs), plus
//! `BOSIM_PERF_REPS` (default 3): timed repetitions per mode, keeping
//! the fastest; and `BOSIM_PERF_MIN_SPEEDUP`: when set, the process
//! exits non-zero unless the aggregate speedup across all arms meets
//! the floor (the CI regression gate; a golden-stats mismatch already
//! aborts via the harness's own assertion). Runs are serial by design —
//! wall-clock timing would be noise otherwise.

use bosim::SimConfig;
use bosim_bench::{
    aggregate_speedup, measure_suite, perf_arms, selected_benchmarks, throughput_report,
    ArmThroughput,
};

fn main() {
    let cfg = SimConfig::default();
    let benches = selected_benchmarks();
    let reps: usize = std::env::var("BOSIM_PERF_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let machine_arms = perf_arms(&cfg);
    eprintln!(
        "[perf] {} benchmarks × {} arms × 2 modes × {} reps, {} + {} instructions each (serial)",
        benches.len(),
        machine_arms.len(),
        reps,
        cfg.warmup_instructions,
        cfg.measure_instructions,
    );
    let arms: Vec<ArmThroughput> = machine_arms
        .into_iter()
        .map(|(label, config)| {
            eprintln!("[perf] arm {label} ({})", config.label());
            let pairs = measure_suite(&config, &benches, reps);
            for p in &pairs {
                eprintln!(
                    "[perf]   {:<16} stepped {:>5.1}% of {:.1} Mcycles, {:.2}x",
                    p.naive.benchmark,
                    p.optimized.steps as f64 / p.optimized.sim_cycles as f64 * 100.0,
                    p.optimized.sim_cycles as f64 / 1e6,
                    p.speedup(),
                );
            }
            ArmThroughput {
                label,
                config,
                pairs,
            }
        })
        .collect();
    let report = throughput_report(&arms);
    report.emit();
    let total_speedup = aggregate_speedup(&arms);
    eprintln!("[perf] aggregate speedup (opt/naive sim-cycles/s, all arms): {total_speedup:.2}x");
    if let Some(floor) = std::env::var("BOSIM_PERF_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        if total_speedup < floor {
            eprintln!(
                "[perf] FAIL: aggregate speedup {total_speedup:.2}x is below the \
                 BOSIM_PERF_MIN_SPEEDUP floor of {floor:.2}x"
            );
            std::process::exit(1);
        }
        eprintln!("[perf] aggregate speedup meets the {floor:.2}x floor");
    }
}
