//! `perf` — the simulator-throughput harness.
//!
//! Runs every selected benchmark twice on the same configuration — once
//! with the naive every-cycle system loop, once with idle-stretch
//! fast-forwarding — asserts the results are bit-identical, and reports
//! sim-cycles/sec, µops/sec and the optimized/naive speedup per
//! benchmark plus an aggregate `TOTAL` column. The JSON report lands in
//! `BENCH_throughput.json` under the report directory.
//!
//! Environment knobs: `BOSIM_BENCHMARKS`, `BOSIM_INSTRUCTIONS`,
//! `BOSIM_WARMUP`, `BOSIM_REPORT_DIR` (see the crate docs), plus
//! `BOSIM_PERF_REPS` (default 3): timed repetitions per mode, keeping
//! the fastest. Runs are serial by design — wall-clock timing would be
//! noise otherwise.

use bosim::SimConfig;
use bosim_bench::{measure_suite, selected_benchmarks, throughput_report};

fn main() {
    let cfg = SimConfig::default();
    let benches = selected_benchmarks();
    let reps: usize = std::env::var("BOSIM_PERF_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    eprintln!(
        "[perf] {} benchmarks × 2 modes × {} reps, {} + {} instructions each (serial)",
        benches.len(),
        reps,
        cfg.warmup_instructions,
        cfg.measure_instructions,
    );
    let pairs = measure_suite(&cfg, &benches, reps);
    for p in &pairs {
        eprintln!(
            "[perf] {:<16} stepped {:>5.1}% of {:.1} Mcycles, {:.2}x",
            p.naive.benchmark,
            p.optimized.steps as f64 / p.optimized.sim_cycles as f64 * 100.0,
            p.optimized.sim_cycles as f64 / 1e6,
            p.speedup(),
        );
    }
    let report = throughput_report(&cfg, &pairs);
    report.emit();
    let total_speedup = report
        .arms
        .last()
        .and_then(|a| a.values.last().copied())
        .unwrap_or(f64::NAN);
    eprintln!("[perf] aggregate speedup (opt/naive sim-cycles/s): {total_speedup:.2}x");
}
