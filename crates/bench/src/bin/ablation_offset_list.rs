//! Ablation (beyond the paper): the 5-smooth offset list vs the full
//! 1..N ranges discussed in §4.2, and a negative-offset variant.
use best_offset::{BoConfig, OffsetList};
use bosim::{L2PrefetcherKind, SimConfig};
use bosim_bench::gm_variants_figure;
use bosim_types::PageSize;

fn bo_with(list: OffsetList) -> impl Fn(PageSize, usize) -> SimConfig {
    move |p, n| {
        let cfg = BoConfig { offsets: list.clone(), ..Default::default() };
        SimConfig::baseline(p, n).with_prefetcher(L2PrefetcherKind::Bo(cfg))
    }
}

fn main() {
    let neg: Vec<i64> = (1..=64).chain((1..=8).map(|d| -d)).collect();
    let variants: Vec<(String, Box<dyn Fn(PageSize, usize) -> SimConfig>)> = vec![
        ("5-smooth<=256 (paper)".to_string(), Box::new(bo_with(OffsetList::paper_default()))),
        ("full 1..=63".to_string(), Box::new(bo_with(OffsetList::full_range(63)))),
        ("full 1..=256".to_string(), Box::new(bo_with(OffsetList::full_range(256)))),
        ("1..=64 + negatives".to_string(), Box::new(bo_with(OffsetList::new(neg)))),
    ];
    gm_variants_figure("Ablation: offset list construction (GM speedup)", &variants).print();
}
