//! Ablation (beyond the paper): the 5-smooth offset list vs the full
//! 1..N ranges discussed in §4.2, and a negative-offset variant.
use best_offset::{BoConfig, OffsetList};
use bosim::{prefetchers, SimConfig};
use bosim_bench::{six_baseline_gm_variants, VariantFn};

fn bo_with(list: OffsetList) -> VariantFn {
    Box::new(move |p, n| {
        let cfg = BoConfig {
            offsets: list.clone(),
            ..Default::default()
        };
        SimConfig::baseline(p, n).with_prefetcher(prefetchers::bo(cfg))
    })
}

fn main() {
    let neg: Vec<i64> = (1..=64).chain((1..=8).map(|d| -d)).collect();
    let variants: Vec<(String, VariantFn)> = vec![
        (
            "5-smooth<=256 (paper)".to_string(),
            bo_with(OffsetList::paper_default()),
        ),
        (
            "full 1..=63".to_string(),
            bo_with(OffsetList::full_range(63)),
        ),
        (
            "full 1..=256".to_string(),
            bo_with(OffsetList::full_range(256)),
        ),
        (
            "1..=64 + negatives".to_string(),
            bo_with(OffsetList::new(neg)),
        ),
    ];
    six_baseline_gm_variants(
        "ablation_offset_list",
        "Ablation: offset list construction (GM speedup)",
        &variants,
    )
    .run_and_emit();
}
