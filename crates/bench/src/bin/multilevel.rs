//! Multi-level prefetcher stacks (the `PrefetchSite` experiment).
//!
//! Sweeps prefetcher placements across the three sites of the hierarchy
//! — the Figure 4 shape (L1 on/off) crossed with the new L3 site — and
//! reports speedups over the paper's next-line baseline. Arms are
//! expressed with site-qualified registry names (`l1:stride`, `l2:bo`,
//! `l3:next-line`), exactly what `SimConfigBuilder::site` accepts.
//!
//! The binary is also the CI multi-level smoke arm: after the grid it
//! re-runs the full three-site stack on one streaming benchmark and
//! checks the per-site telemetry invariants (`useful + unused_evicted
//! <= prefetch_fills` at the L2 and L3 sites), exiting non-zero on any
//! violation.
//!
//! Run with: `cargo run --release -p bosim-bench --bin multilevel`

use bosim::{SimConfig, System};
use bosim_bench::Experiment;
use bosim_trace::suite;

/// Builds a configuration from site-qualified registry names.
fn sites(names: &[&str]) -> SimConfig {
    let mut b = SimConfig::builder().no_l1_prefetcher();
    for name in names {
        b = b.site(name).unwrap_or_else(|e| panic!("{e}"));
    }
    b.build().unwrap_or_else(|e| panic!("{e}"))
}

fn main() {
    let base = SimConfig::default();
    Experiment::new(
        "multilevel",
        "Multi-level prefetching: speedup over the next-line baseline",
    )
    .arm_vs("l2:bo", sites(&["l1:stride", "l2:bo"]), base.clone())
    .arm_vs(
        "l2:bo, no l1",
        sites(&["l2:bo"]), // L1 site left empty (Figure 4 shape)
        base.clone(),
    )
    .arm_vs(
        "l2:bo + l3:next-line",
        sites(&["l1:stride", "l2:bo", "l3:next-line"]),
        base.clone(),
    )
    .arm_vs(
        "l2:bo + l3:offset-8",
        sites(&["l1:stride", "l2:bo", "l3:offset-8"]),
        base,
    )
    .run_and_emit();

    // CI smoke: the full stack's per-site telemetry must satisfy the
    // resolution invariant at every site.
    let bench = suite::benchmark("462").expect("libquantum-like");
    let cfg = SimConfig {
        warmup_instructions: 20_000,
        measure_instructions: 100_000,
        ..sites(&["l1:stride", "l2:bo", "l3:next-line"])
    };
    let result = System::new(&cfg, &bench).run();
    if let Err(e) = result.check_site_invariants() {
        eprintln!("[bosim] per-site telemetry invariant violated: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "[bosim] per-site invariants hold: l1 issued {}, l2 issued {} (useful {}), l3 issued {} (useful {})",
        result.core.l1_prefetches,
        result.l2_site.issued,
        result.l2_site.useful,
        result.l3_site.issued,
        result.l3_site.useful,
    );
}
