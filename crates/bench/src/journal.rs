//! Journaled grid cells: the resumable execution mode of an
//! [`ExperimentPlan`].
//!
//! A long-running sweep (`bosim serve`) does not hold its grid in
//! memory until the end: every completed job becomes a [`JobRow`] —
//! the benchmark/config labels, both metric values, and the full
//! [`RunSummary`] JSON subtree — appended to an on-disk journal as soon
//! as it finishes. After a crash, the rows already journaled are loaded
//! back and only the missing jobs run; the final report is assembled
//! *from rows* in both the interrupted and the uninterrupted case
//! ([`ExperimentPlan::report_json_from_rows`]), which is what makes the
//! resumed report byte-identical to an uninterrupted one: the report
//! depends only on the row set, never on completion order or on which
//! process produced a row.
//!
//! Rows are keyed by [`ExperimentPlan::job_key`] — a restart-stable
//! identity hashing the benchmark and the full configuration — so a
//! journal written against a different corpus or arm set cannot be
//! silently replayed (the serving layer also checks
//! [`ExperimentPlan::fingerprint`] for the whole grid).
//!
//! Determinism note: rows carry **no wall-clock timestamps**. Ordering
//! is by job index at assembly time, and the journal's only sequencing
//! is file append order, which the report never depends on. The lint's
//! D002 rule keeps this module clock-free.

use crate::experiment::ExperimentPlan;
use crate::report::{arm_gm, RunSummary};
use bosim::SimResult;
use bosim_stats::Json;
use std::collections::BTreeMap;
use std::fmt;

/// 64-bit FNV-1a — the workspace's restart-stable hash for job keys and
/// plan fingerprints (`DefaultHasher` is seeded per process and cannot
/// be trusted across restarts).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One journaled grid cell: everything the report needs from one
/// completed job, in a form that survives a JSON round trip exactly
/// (f64s are emitted in Rust's shortest round-trip form).
// bosim-lint: schema(serve-journal-row)
#[derive(Debug, Clone, PartialEq)]
pub struct JobRow {
    /// The job's index in [`ExperimentPlan::jobs`] order.
    pub job: usize,
    /// The restart-stable job key ([`ExperimentPlan::job_key`]).
    pub key: String,
    /// Benchmark name (e.g. `"462.libquantum-like"`).
    pub benchmark: String,
    /// Configuration label (e.g. `"4KB/1-core/l2:BO"`).
    pub config: String,
    /// Instructions per cycle on core 0 — the
    /// [`Metric::Ipc`](crate::Metric::Ipc) value.
    pub ipc: f64,
    /// DRAM accesses per kilo-instruction — the
    /// [`Metric::DramPerKi`](crate::Metric::DramPerKi) value.
    pub dram_per_ki: f64,
    /// The full [`RunSummary`] JSON subtree, embedded verbatim in the
    /// assembled report.
    pub summary: Json,
}

/// A failure while decoding a journal row or assembling a report from
/// rows.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// A row line was structurally wrong (missing/ill-typed field).
    BadRow {
        /// What was missing or mistyped.
        what: String,
    },
    /// Report assembly found no row for a planned job.
    MissingRow {
        /// The job index with no row.
        job: usize,
        /// Its stable key.
        key: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::BadRow { what } => write!(f, "bad journal row: {what}"),
            JournalError::MissingRow { job, key } => {
                write!(f, "no journal row for job {job} ({key})")
            }
        }
    }
}

impl std::error::Error for JournalError {}

fn as_u64(j: &Json) -> Option<u64> {
    match *j {
        Json::UInt(u) => Some(u),
        Json::Int(i) => u64::try_from(i).ok(),
        _ => None,
    }
}

impl JobRow {
    /// The compact JSON form written as one journal line.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("job", Json::UInt(self.job as u64)),
            ("key", Json::from(self.key.as_str())),
            ("benchmark", Json::from(self.benchmark.as_str())),
            ("config", Json::from(self.config.as_str())),
            ("ipc", Json::from(self.ipc)),
            ("dram_per_ki", Json::from(self.dram_per_ki)),
            ("summary", self.summary.clone()),
        ])
    }

    /// Decodes one journal line's JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::BadRow`] naming the first missing or
    /// ill-typed field.
    pub fn from_json(doc: &Json) -> Result<JobRow, JournalError> {
        let field = |key: &str| {
            doc.get(key).ok_or_else(|| JournalError::BadRow {
                what: format!("missing field {key:?}"),
            })
        };
        let str_field = |key: &str| {
            field(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| JournalError::BadRow {
                    what: format!("field {key:?} is not a string"),
                })
        };
        let num_field = |key: &str| {
            field(key)?.as_f64().ok_or_else(|| JournalError::BadRow {
                what: format!("field {key:?} is not a number"),
            })
        };
        let job = as_u64(field("job")?).ok_or_else(|| JournalError::BadRow {
            what: "field \"job\" is not a non-negative integer".to_string(),
        })? as usize;
        Ok(JobRow {
            job,
            key: str_field("key")?,
            benchmark: str_field("benchmark")?,
            config: str_field("config")?,
            ipc: num_field("ipc")?,
            dram_per_ki: num_field("dram_per_ki")?,
            summary: field("summary")?.clone(),
        })
    }
}

impl ExperimentPlan {
    /// Distils a finished job into its journal row.
    ///
    /// # Panics
    ///
    /// Panics when `job` is out of range.
    pub fn row(&self, job: usize, result: &SimResult) -> JobRow {
        JobRow {
            job,
            key: self.job_key(job).to_string(),
            benchmark: result.benchmark.clone(),
            config: result.config.clone(),
            ipc: result.ipc(),
            dram_per_ki: result.dram_accesses_per_ki(),
            summary: RunSummary::from(result).to_json(),
        }
    }

    /// Assembles the report JSON document from one row per planned job.
    ///
    /// The output is byte-identical to
    /// `self.assemble(results).to_json()` when the rows were distilled
    /// from `results` via [`row`](Self::row) — including rows that went
    /// through a journal round trip — because every number either
    /// round-trips exactly through JSON or is recomputed here from
    /// round-tripped inputs with the same float operations.
    ///
    /// # Errors
    ///
    /// Returns [`JournalError::MissingRow`] when a planned job has no
    /// row.
    pub fn report_json_from_rows(
        &self,
        rows: &BTreeMap<usize, JobRow>,
    ) -> Result<Json, JournalError> {
        let get = |job: usize| {
            rows.get(&job).ok_or_else(|| JournalError::MissingRow {
                job,
                key: self.job_key(job).to_string(),
            })
        };
        let mut arms = Vec::with_capacity(self.arms.len());
        for (arm, row) in self.arms.iter().zip(&self.lookup) {
            let mut values = Vec::with_capacity(row.len());
            for &(s, b) in row {
                let sr = get(s)?;
                let subject = self.metric.row_value(sr.ipc, sr.dram_per_ki);
                values.push(match b {
                    Some(b) => {
                        let br = get(b)?;
                        subject / self.metric.row_value(br.ipc, br.dram_per_ki)
                    }
                    None => subject,
                });
            }
            let gm = arm_gm(&values, self.with_gm);
            let mut runs = Vec::with_capacity(row.len());
            for &(s, _) in row {
                runs.push(get(s)?.summary.clone());
            }
            arms.push(Json::obj([
                ("series", Json::from(arm.series.as_str())),
                ("group", Json::from(arm.group.as_deref().map(Json::from))),
                ("config", Json::from(arm.config.as_str())),
                (
                    "baseline",
                    Json::from(arm.baseline.as_deref().map(Json::from)),
                ),
                ("gm", Json::from(gm)),
                ("values", Json::arr(values.into_iter().map(Json::from))),
                ("runs", Json::arr(runs)),
            ]));
        }
        Ok(Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("title", Json::from(self.title.as_str())),
            ("metric", Json::from(self.metric.label(self.paired))),
            (
                "benchmarks",
                Json::arr(self.benchmarks.iter().map(|b| Json::from(b.short.as_str()))),
            ),
            ("arms", Json::arr(arms)),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Experiment;
    use bosim::{run_jobs, SimConfig};

    fn tiny(cfg: SimConfig) -> SimConfig {
        SimConfig {
            warmup_instructions: 2_000,
            measure_instructions: 10_000,
            ..cfg
        }
    }

    #[test]
    fn fnv64_is_stable() {
        // Pinned values: the journal's keys must never drift between
        // builds, or resumes would re-run the whole grid.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }

    #[test]
    fn job_rows_round_trip_through_json_text() {
        let row = JobRow {
            job: 3,
            key: "456#0|00000000deadbeef".into(),
            benchmark: "456.hmmer-like".into(),
            config: "4KB/1-core/next-line".into(),
            ipc: 1.234567890123,
            dram_per_ki: 0.1 + 0.2, // deliberately non-representable
            summary: Json::obj([("ipc", Json::Num(1.234567890123))]),
        };
        let text = row.to_json().to_string();
        let back = JobRow::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, row);
        // And re-emission is byte-identical (shortest-repr idempotence).
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn bad_rows_name_the_field() {
        let doc = Json::parse(r#"{"job":1,"key":"k"}"#).unwrap();
        let err = JobRow::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("benchmark"), "{err}");
        let doc = Json::parse(r#"{"job":-1}"#).unwrap();
        let err = JobRow::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("job"), "{err}");
        let doc = Json::parse(r#"{"job":0,"key":"k","benchmark":"b","config":"c","ipc":"fast"}"#)
            .unwrap();
        let err = JobRow::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("ipc"), "{err}");
    }

    #[test]
    fn rows_reassemble_the_report_byte_identically() {
        let base = tiny(SimConfig::default());
        let bo = base
            .clone()
            .with_prefetcher(bosim::prefetchers::bo_default());
        let exp = Experiment::new("journal_rt", "journal round trip")
            .benchmark_ids(&["456", "444"])
            .arm_vs("BO", bo, base.clone())
            .arm_vs("self", base.clone(), base);
        let plan = exp.plan().unwrap();
        let results = run_jobs(plan.jobs(), 2).unwrap();
        let direct = plan.assemble(&results).to_json().to_pretty();

        // Distil rows, push them through journal-line text, and
        // assemble from the parsed rows — the document must not drift
        // by a byte.
        let mut rows = BTreeMap::new();
        for (i, r) in results.iter().enumerate() {
            let line = plan.row(i, r).to_json().to_string();
            let back = JobRow::from_json(&Json::parse(&line).unwrap()).unwrap();
            rows.insert(back.job, back);
        }
        let from_rows = plan.report_json_from_rows(&rows).unwrap().to_pretty();
        assert_eq!(from_rows, direct);
    }

    #[test]
    fn missing_rows_are_reported_with_their_key() {
        let exp = Experiment::new("journal_miss", "missing rows")
            .benchmark_ids(&["456"])
            .arm("base", tiny(SimConfig::default()));
        let plan = exp.plan().unwrap();
        let err = plan.report_json_from_rows(&BTreeMap::new()).unwrap_err();
        match err {
            JournalError::MissingRow { job, ref key } => {
                assert_eq!(job, 0);
                assert_eq!(key, plan.job_key(0));
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn job_keys_and_fingerprints_are_restart_stable() {
        let mk = || {
            Experiment::new("stable", "stable")
                .benchmark_ids(&["456", "444"])
                .arm_vs(
                    "BO",
                    tiny(SimConfig::default()).with_prefetcher(bosim::prefetchers::bo_default()),
                    tiny(SimConfig::default()),
                )
        };
        let a = mk().plan().unwrap();
        let b = mk().plan().unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        for i in 0..a.jobs().len() {
            assert_eq!(a.job_key(i), b.job_key(i));
        }
        // A different grid fingerprints differently.
        let c = Experiment::new("stable", "stable")
            .benchmark_ids(&["456"])
            .arm("raw", tiny(SimConfig::default()))
            .plan()
            .unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
