//! Shared harness code for the per-figure experiment binaries.
//!
//! Every binary regenerates one table or figure of *Best-Offset Hardware
//! Prefetching* (HPCA 2016) and prints both a machine-readable TSV block
//! and an aligned human-readable table, ending with the geometric-mean
//! row the paper reports.
//!
//! Environment knobs (all optional):
//!
//! * `BOSIM_INSTRUCTIONS` — measured instructions per run (default 1M),
//! * `BOSIM_WARMUP` — warm-up instructions (default 200k),
//! * `BOSIM_BENCHMARKS` — comma-separated short ids (default: all 29),
//! * `BOSIM_THREADS` — worker threads (default: all cores),
//! * `BOSIM_CONFIGS` — subset of the six baselines, e.g. `4KB/1,4MB/2`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bosim::{run_jobs, Job, SimConfig, SimResult};
use bosim_stats::{geometric_mean, Align, Table};
use bosim_trace::{suite, BenchmarkSpec};
use bosim_types::PageSize;

/// The benchmarks selected for this invocation (honours
/// `BOSIM_BENCHMARKS`).
pub fn selected_benchmarks() -> Vec<BenchmarkSpec> {
    match std::env::var("BOSIM_BENCHMARKS") {
        Ok(list) if !list.trim().is_empty() => list
            .split(',')
            .map(|id| {
                suite::benchmark(id.trim())
                    .unwrap_or_else(|| panic!("unknown benchmark id {id:?}"))
            })
            .collect(),
        _ => suite::suite(),
    }
}

/// Worker threads (honours `BOSIM_THREADS`).
pub fn threads() -> usize {
    std::env::var("BOSIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(bosim::default_threads)
}

/// The six baseline configurations of §5 (honours `BOSIM_CONFIGS`).
pub fn six_baselines() -> Vec<(PageSize, usize)> {
    let all = vec![
        (PageSize::K4, 1),
        (PageSize::K4, 2),
        (PageSize::K4, 4),
        (PageSize::M4, 1),
        (PageSize::M4, 2),
        (PageSize::M4, 4),
    ];
    match std::env::var("BOSIM_CONFIGS") {
        Ok(list) if !list.trim().is_empty() => {
            let wanted: Vec<String> = list.split(',').map(|s| s.trim().to_string()).collect();
            all.into_iter()
                .filter(|(p, n)| wanted.iter().any(|w| w == &format!("{}/{}", p.label(), n)))
                .collect()
        }
        _ => all,
    }
}

/// Configuration label like `4KB/2-core`.
pub fn cfg_label(page: PageSize, cores: usize) -> String {
    format!("{}/{}-core", page.label(), cores)
}

/// Runs the full grid `benchmarks × configs` in parallel, returning
/// results grouped per config (outer) in input order (inner).
pub fn run_grid(benchmarks: &[BenchmarkSpec], configs: &[SimConfig]) -> Vec<Vec<SimResult>> {
    let mut jobs = Vec::new();
    for cfg in configs {
        for b in benchmarks {
            jobs.push(Job {
                bench: b.clone(),
                config: cfg.clone(),
            });
        }
    }
    eprintln!(
        "[bosim] running {} jobs on {} threads ({} instr + {} warmup each)",
        jobs.len(),
        threads(),
        configs
            .first()
            .map(|c| c.measure_instructions)
            .unwrap_or_default(),
        configs.first().map(|c| c.warmup_instructions).unwrap_or_default(),
    );
    let t0 = std::time::Instant::now();
    let results = run_jobs(&jobs, threads());
    eprintln!("[bosim] grid done in {:.1}s", t0.elapsed().as_secs_f64());
    results
        .chunks(benchmarks.len())
        .map(|c| c.to_vec())
        .collect()
}

/// A figure expressed as per-benchmark rows of one value per series,
/// printed with a trailing geometric-mean row (the paper's "GM" cluster).
#[derive(Debug)]
pub struct Figure {
    title: String,
    series: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    /// Append a geometric-mean summary row.
    pub with_gm: bool,
    /// Decimal places.
    pub decimals: usize,
}

impl Figure {
    /// Creates a figure with named series (columns).
    pub fn new(title: impl Into<String>, series: Vec<String>) -> Self {
        Figure {
            title: title.into(),
            series,
            rows: Vec::new(),
            with_gm: true,
            decimals: 3,
        }
    }

    /// Adds a benchmark row.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the series count.
    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.series.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Renders TSV + aligned table + GM row to stdout.
    pub fn print(&self) {
        println!("# {}", self.title);
        let mut header = vec!["benchmark".to_string()];
        header.extend(self.series.iter().cloned());
        let mut t = Table::new(header);
        let mut aligns = vec![Align::Left];
        aligns.extend(std::iter::repeat(Align::Right).take(self.series.len()));
        t.align(aligns);
        for (label, vals) in &self.rows {
            let mut cells = vec![label.clone()];
            cells.extend(vals.iter().map(|v| format!("{v:.prec$}", prec = self.decimals)));
            t.row(cells);
        }
        if self.with_gm && !self.rows.is_empty() {
            let mut cells = vec!["GM".to_string()];
            for s in 0..self.series.len() {
                let gm = geometric_mean(self.rows.iter().map(|(_, v)| v[s]))
                    .expect("non-empty rows");
                cells.push(format!("{gm:.prec$}", prec = self.decimals));
            }
            t.row(cells);
        }
        print!("{}", t.to_tsv());
        println!();
        println!("{t}");
    }
}

/// Computes per-benchmark speedups of `subject` over `baseline` result
/// vectors (same benchmark order).
pub fn speedup_column(subject: &[SimResult], baseline: &[SimResult]) -> Vec<f64> {
    subject
        .iter()
        .zip(baseline)
        .map(|(s, b)| {
            assert_eq!(s.benchmark, b.benchmark);
            s.ipc() / b.ipc()
        })
        .collect()
}

/// Short row label from a benchmark name: `"433.milc-like"` → `"433"`.
pub fn short_label(name: &str) -> String {
    name.split('.').next().unwrap_or(name).to_string()
}


/// Renders a per-benchmark speedup figure (Figures 4, 5, 6 pattern): one
/// series per §5 baseline configuration, each value the speedup of the
/// subject configuration over the Table 1 baseline.
pub fn per_benchmark_speedup_figure(
    title: &str,
    subject: impl Fn(PageSize, usize) -> SimConfig,
) -> Figure {
    let benches = selected_benchmarks();
    let baselines = six_baselines();
    let mut configs = Vec::new();
    for &(page, cores) in &baselines {
        configs.push(SimConfig::baseline(page, cores));
        configs.push(subject(page, cores));
    }
    let grids = run_grid(&benches, &configs);
    let series = baselines
        .iter()
        .map(|&(p, n)| cfg_label(p, n))
        .collect::<Vec<_>>();
    let mut fig = Figure::new(title, series);
    for (bi, b) in benches.iter().enumerate() {
        let mut vals = Vec::new();
        for ci in 0..baselines.len() {
            let base = &grids[ci * 2][bi];
            let subj = &grids[ci * 2 + 1][bi];
            vals.push(subj.ipc() / base.ipc());
        }
        fig.row(short_label(&b.name), vals);
    }
    fig
}

/// Renders a geometric-mean-only figure (Figures 7, 9, 10, 11 pattern):
/// rows are the §5 baseline configurations, series are named variants.
pub fn gm_variants_figure(
    title: &str,
    variants: &[(String, Box<dyn Fn(PageSize, usize) -> SimConfig>)],
) -> Figure {
    let benches = selected_benchmarks();
    let baselines = six_baselines();
    let mut configs = Vec::new();
    for &(page, cores) in &baselines {
        configs.push(SimConfig::baseline(page, cores));
        for (_, make) in variants {
            configs.push(make(page, cores));
        }
    }
    let grids = run_grid(&benches, &configs);
    let series: Vec<String> = variants.iter().map(|(n, _)| n.clone()).collect();
    let stride = 1 + variants.len();
    let mut fig = Figure::new(title, series);
    fig.with_gm = false;
    for (ci, &(page, cores)) in baselines.iter().enumerate() {
        let base = &grids[ci * stride];
        let mut vals = Vec::new();
        for vi in 0..variants.len() {
            let subj = &grids[ci * stride + 1 + vi];
            let speedups = speedup_column(subj, base);
            vals.push(geometric_mean(speedups).expect("non-empty suite"));
        }
        fig.row(cfg_label(page, cores), vals);
    }
    fig
}

#[cfg(test)]

mod tests {
    use super::*;

    #[test]
    fn six_baselines_default() {
        // Without the env var set, all six §5 baselines are returned.
        if std::env::var("BOSIM_CONFIGS").is_err() {
            assert_eq!(six_baselines().len(), 6);
        }
    }

    #[test]
    fn figure_prints_gm() {
        let mut f = Figure::new("test", vec!["a".into()]);
        f.row("429", vec![2.0]);
        f.row("433", vec![8.0]);
        // GM of [2, 8] = 4: verified via the summary math directly.
        let gm = geometric_mean([2.0, 8.0]).unwrap();
        assert!((gm - 4.0).abs() < 1e-12);
        f.print();
    }

    #[test]
    fn short_labels() {
        assert_eq!(short_label("433.milc-like"), "433");
        assert_eq!(short_label("plain"), "plain");
    }
}
