//! Experiment harness for the per-figure binaries.
//!
//! Every binary regenerates one table or figure of *Best-Offset Hardware
//! Prefetching* (HPCA 2016) by declaring an [`Experiment`]: benchmarks ×
//! labelled configuration arms, an optional per-arm baseline, a metric
//! and a table layout. The harness owns job deduplication, worker
//! threading, speedup pairing and structured [`Report`] output (TSV +
//! aligned text on stdout, JSON under `target/reports/`). The `perf`
//! binary ([`measure_suite`]/[`throughput_report`]) measures simulator
//! throughput itself — sim-cycles/sec, µops/sec, optimized vs naive —
//! and writes `BENCH_throughput.json`; the `adaptive` binary compares
//! static prefetcher configurations against the `bosim-adapt` runtime
//! tuning policies on the phase-shifting workload, with per-epoch
//! telemetry in its report JSON.
//!
//! ```no_run
//! use bosim::{prefetchers, SimConfig};
//! use bosim_bench::six_baseline_speedup;
//!
//! six_baseline_speedup(
//!     "fig06_bo_speedup",
//!     "Figure 6: BO prefetcher speedup over next-line",
//!     |page, cores| {
//!         SimConfig::baseline(page, cores).with_prefetcher(prefetchers::bo_default())
//!     },
//! )
//! .run_and_emit();
//! ```
//!
//! Environment knobs (all optional):
//!
//! * `BOSIM_INSTRUCTIONS` — measured instructions per run (default 1M),
//! * `BOSIM_WARMUP` — warm-up instructions (default 200k),
//! * `BOSIM_BENCHMARKS` — comma-separated short ids (default: all 29),
//! * `BOSIM_THREADS` — worker threads (default: all cores),
//! * `BOSIM_CONFIGS` — subset of the six baselines, e.g. `4KB/1,4MB/2`,
//! * `BOSIM_REPORT_DIR` — JSON report directory (default `target/reports`).

#![warn(missing_docs)]

mod experiment;
pub mod journal;
mod report;
mod throughput;

pub use experiment::{
    six_baseline_gm_variants, six_baseline_speedup, Experiment, ExperimentError, ExperimentPlan,
    Metric, PlannedArm, VariantFn,
};
pub use journal::{JobRow, JournalError};
pub use report::{ArmReport, Layout, Report, RunSummary};
pub use throughput::{
    aggregate_speedup, measure, measure_suite, perf_arms, throughput_report, ArmThroughput,
    ThroughputMeasurement, ThroughputPair,
};

use bosim_trace::{suite, BenchmarkSpec};
use bosim_types::PageSize;

/// The benchmarks selected for this invocation (honours
/// `BOSIM_BENCHMARKS`).
pub fn selected_benchmarks() -> Vec<BenchmarkSpec> {
    match std::env::var("BOSIM_BENCHMARKS") {
        Ok(list) if !list.trim().is_empty() => list
            .split(',')
            .map(|id| {
                // bosim-lint: allow(P003, harness entry point; env-var benchmark lists fail fast by design)
                suite::benchmark(id.trim()).unwrap_or_else(|| panic!("unknown benchmark id {id:?}"))
            })
            .collect(),
        _ => suite::suite(),
    }
}

/// Worker threads (honours `BOSIM_THREADS`).
pub fn threads() -> usize {
    std::env::var("BOSIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(bosim::default_threads)
}

/// The six baseline configurations of §5 (honours `BOSIM_CONFIGS`).
pub fn six_baselines() -> Vec<(PageSize, usize)> {
    let all = vec![
        (PageSize::K4, 1),
        (PageSize::K4, 2),
        (PageSize::K4, 4),
        (PageSize::M4, 1),
        (PageSize::M4, 2),
        (PageSize::M4, 4),
    ];
    match std::env::var("BOSIM_CONFIGS") {
        Ok(list) if !list.trim().is_empty() => {
            let wanted: Vec<String> = list.split(',').map(|s| s.trim().to_string()).collect();
            all.into_iter()
                .filter(|(p, n)| wanted.iter().any(|w| w == &format!("{}/{}", p.label(), n)))
                .collect()
        }
        _ => all,
    }
}

/// Configuration label like `4KB/2-core`.
pub fn cfg_label(page: PageSize, cores: usize) -> String {
    format!("{}/{}-core", page.label(), cores)
}

/// Short row label from a benchmark name: `"433.milc-like"` → `"433"`.
pub fn short_label(name: &str) -> String {
    name.split('.').next().unwrap_or(name).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_baselines_default() {
        // Without the env var set, all six §5 baselines are returned.
        if std::env::var("BOSIM_CONFIGS").is_err() {
            assert_eq!(six_baselines().len(), 6);
        }
    }

    #[test]
    fn short_labels() {
        assert_eq!(short_label("433.milc-like"), "433");
        assert_eq!(short_label("plain"), "plain");
    }

    #[test]
    fn cfg_labels() {
        assert_eq!(cfg_label(PageSize::K4, 2), "4KB/2-core");
    }
}
