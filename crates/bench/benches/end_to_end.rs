//! End-to-end simulator throughput: short full-system runs per
//! L2-prefetcher configuration.

use bosim::{prefetchers, SimConfig, System};
use bosim_trace::suite;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_full_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_system_20k_instructions");
    g.sample_size(10);
    for (name, kind) in [
        ("none", prefetchers::none()),
        ("next_line", prefetchers::next_line()),
        ("bo", prefetchers::bo_default()),
        ("sbp", prefetchers::sbp_default()),
    ] {
        g.bench_function(name, |b| {
            let spec = suite::benchmark("462").expect("exists");
            let cfg = SimConfig {
                warmup_instructions: 2_000,
                measure_instructions: 20_000,
                ..Default::default()
            }
            .with_prefetcher(kind.clone());
            b.iter(|| {
                let mut sys = System::new(&cfg, &spec);
                black_box(sys.run().ipc())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_full_system);
criterion_main!(benches);
