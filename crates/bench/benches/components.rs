//! Criterion micro-benchmarks for the simulator's hardware components.
//!
//! These measure simulation-host throughput of the structures the paper's
//! mechanisms are built from (RR table, score learning, Bloom-filter
//! sandbox, cache arrays, 5P policy, TAGE, DRAM mapping/scheduling,
//! synthetic trace generation).

use best_offset::{
    AccessOutcome, BestOffsetPrefetcher, L2Access, L2Prefetcher, OffsetList, RrTable,
};
use bosim_baselines::{BloomFilter, SandboxPrefetcher, StridePrefetcher};
use bosim_cache::policy::{InsertCtx, PolicyKind};
use bosim_cache::CacheArray;
use bosim_cpu::{Tage, Tlb};
use bosim_dram::{map_line, MemConfig, MemorySystem};
use bosim_trace::{suite, TraceSource};
use bosim_types::{CoreId, LineAddr, PageSize, VirtAddr};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_rr_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("rr_table");
    g.bench_function("insert", |b| {
        let mut t = RrTable::new(256, 12);
        let mut i = 0u64;
        b.iter(|| {
            t.insert(LineAddr(black_box(i)));
            i = i.wrapping_add(97);
        });
    });
    g.bench_function("lookup", |b| {
        let mut t = RrTable::new(256, 12);
        for i in 0..256 {
            t.insert(LineAddr(i * 131));
        }
        let mut i = 0u64;
        b.iter(|| {
            let hit = t.contains(LineAddr(black_box(i)));
            i = i.wrapping_add(131);
            black_box(hit)
        });
    });
    g.finish();
}

fn bench_bo(c: &mut Criterion) {
    let mut g = c.benchmark_group("best_offset");
    g.bench_function("on_access_stream", |b| {
        let mut bo = BestOffsetPrefetcher::with_defaults(PageSize::M4);
        let mut out = Vec::new();
        let mut line = 0u64;
        b.iter(|| {
            out.clear();
            bo.on_access(
                L2Access {
                    line: LineAddr(line),
                    outcome: AccessOutcome::Miss,
                },
                &mut out,
            );
            for &l in &out {
                bo.on_fill(l, true);
            }
            line += 1;
        });
    });
    g.bench_function("offset_list_generation", |b| {
        b.iter(|| black_box(OffsetList::smooth5(256)));
    });
    g.finish();
}

fn bench_sbp(c: &mut Criterion) {
    let mut g = c.benchmark_group("sandbox");
    g.bench_function("bloom_insert_contains", |b| {
        let mut f = BloomFilter::new(2048, 3);
        let mut i = 0u64;
        b.iter(|| {
            f.insert(black_box(i));
            let hit = f.contains(black_box(i / 2));
            i += 1;
            black_box(hit)
        });
    });
    g.bench_function("on_access_stream", |b| {
        let mut sbp = SandboxPrefetcher::with_defaults(PageSize::M4);
        let mut out = Vec::new();
        let mut line = 0u64;
        b.iter(|| {
            out.clear();
            sbp.on_access(
                L2Access {
                    line: LineAddr(line),
                    outcome: AccessOutcome::Miss,
                },
                &mut out,
            );
            line += 1;
        });
    });
    g.finish();
}

fn bench_stride(c: &mut Criterion) {
    c.bench_function("stride_prefetcher_retire_access", |b| {
        let mut s = StridePrefetcher::with_defaults();
        let mut addr = 0u64;
        b.iter(|| {
            s.on_retire(0x400100, VirtAddr(addr));
            let p = s.on_access(0x400100, VirtAddr(addr));
            addr += 96;
            black_box(p)
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_array");
    for (name, policy) in [("lru", PolicyKind::Lru), ("fivep", PolicyKind::FiveP)] {
        g.bench_function(format!("l3_access_insert_{name}"), |b| {
            let mut l3 = CacheArray::new(8 << 20, 16, policy, 4, 7);
            let mut line = 0u64;
            let ctx = InsertCtx {
                demand: true,
                core: CoreId(0),
            };
            b.iter(|| {
                let l = LineAddr(black_box(line));
                if l3.access(l, false).is_none() {
                    l3.insert(l, false, false, ctx);
                }
                line = line.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407) >> 12;
            });
        });
    }
    g.finish();
}

fn bench_tage(c: &mut Criterion) {
    c.bench_function("tage_update", |b| {
        let mut t = Tage::with_defaults();
        let mut i = 0u64;
        b.iter(|| {
            let taken = (i / 3) % 2 == 0;
            let r = t.update(0x400000 + (i % 64) * 4, taken);
            i += 1;
            black_box(r)
        });
    });
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("tlb2_access", |b| {
        let mut t = Tlb::new(512, 8);
        for v in 0..512 {
            t.fill(v);
        }
        let mut v = 0u64;
        b.iter(|| {
            let hit = t.access(black_box(v % 700));
            v += 1;
            black_box(hit)
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.bench_function("map_line", |b| {
        let mut l = 0u64;
        b.iter(|| {
            let loc = map_line(LineAddr(black_box(l)));
            l = l.wrapping_add(0x55555);
            black_box(loc)
        });
    });
    g.bench_function("single_read_roundtrip", |b| {
        b.iter(|| {
            let mut mem = MemorySystem::new(MemConfig {
                num_cores: 1,
                ..Default::default()
            });
            mem.enqueue_read(LineAddr(0x1234), CoreId(0), 1, 0);
            let mut out = Vec::new();
            let mut now = 0;
            while out.is_empty() {
                mem.tick(now, true, &mut out);
                now += 1;
            }
            black_box(now)
        });
    });
    g.finish();
}

fn bench_trace_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_gen");
    for id in ["462", "429", "403"] {
        g.bench_function(format!("uops_{id}"), |b| {
            let spec = suite::benchmark(id).expect("exists");
            let mut src = spec.build();
            b.iter(|| black_box(src.next_uop()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_rr_table,
    bench_bo,
    bench_sbp,
    bench_stride,
    bench_cache,
    bench_tage,
    bench_tlb,
    bench_dram,
    bench_trace_gen
);
criterion_main!(benches);
