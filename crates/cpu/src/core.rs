//! The out-of-order core timing model.
//!
//! Trace-driven and cycle-approximate, calibrated to Table 1: 256-entry
//! ROB, 8-wide decode, 12-wide retire, 2 load ports, 32 DL1 MSHRs, 12
//! cycle minimum branch misprediction penalty with redirect at branch
//! execution, TAGE/ITTAGE prediction, two-level TLBs, 32KB 8-way IL1/DL1
//! (3-cycle DL1), a 42-entry store buffer draining in the background, and
//! a pluggable L1D prefetch site (any [`best_offset::L1Prefetcher`];
//! the §5.5 PC-indexed stride prefetcher is the default occupant,
//! trained at retirement and issuing at access time through the TLB2).
//!
//! Scheduling is event-driven inside a per-cycle `tick`: register
//! dependences are tracked through a scoreboard with wakeup lists, so
//! pointer chases serialise on memory latency while independent loads
//! expose memory-level parallelism — the two behaviours that decide
//! whether prefetch timeliness matters.

use crate::tage::{Ittage, Tage};
use crate::tlb::{PageTranslator, TlbHierarchy};
use best_offset::{L1Prefetcher, TuneDirective};
use bosim_cache::policy::{InsertCtx, PolicyKind};
use bosim_cache::{CacheArray, MshrFile};
use bosim_trace::{MicroOp, TraceSource, UopKind, NUM_REGS};
use bosim_types::{CoreId, Cycle, LineAddr, PageSize, ReqClass, VirtAddr};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Core configuration (Table 1 defaults via [`Default`]).
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Reorder buffer capacity (256).
    pub rob_size: usize,
    /// Decode/dispatch width (8).
    pub dispatch_width: usize,
    /// Retire width (12).
    pub retire_width: usize,
    /// Loads issued per cycle (2 load ports).
    pub load_ports: usize,
    /// Integer ALU ports (Table 1: 4 INT execution ports).
    pub int_ports: usize,
    /// FP ports (Table 1: 2 FP execution ports).
    pub fp_ports: usize,
    /// Store buffer entries (42).
    pub store_buffer: usize,
    /// DL1 MSHR block requests (32).
    pub mshrs: usize,
    /// Minimum misprediction penalty, cycles (12).
    pub mispredict_penalty: u64,
    /// DL1 hit latency, cycles (3).
    pub dl1_latency: u64,
    /// DL1 size in bytes (32KB) and ways (8).
    pub dl1_size: u64,
    /// DL1 associativity.
    pub dl1_ways: usize,
    /// IL1 size in bytes (32KB) and ways (8).
    pub il1_size: u64,
    /// IL1 associativity.
    pub il1_ways: usize,
    /// Decode batch size: µops pulled from the trace source per refill
    /// of the core's decode ring. `0` (the default) bypasses the ring
    /// and pulls one µop at a time through the virtual call — the
    /// reference behaviour the batched path must match exactly (batching
    /// only changes *when* µops are fetched from the source, never which
    /// µops the front-end sees).
    pub decode_batch: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            rob_size: 256,
            dispatch_width: 8,
            retire_width: 12,
            load_ports: 2,
            int_ports: 4,
            fp_ports: 2,
            store_buffer: 42,
            mshrs: 32,
            mispredict_penalty: 12,
            dl1_latency: 3,
            dl1_size: 32 << 10,
            dl1_ways: 8,
            il1_size: 32 << 10,
            il1_ways: 8,
            decode_batch: 0,
        }
    }
}

/// A request the core sends to the uncore (its private L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UncoreRequest {
    /// Read a block (demand miss or DL1 prefetch).
    Read {
        /// Physical line.
        line: LineAddr,
        /// Demand vs L1-prefetch class.
        class: ReqClass,
        /// True for instruction fetches.
        ifetch: bool,
    },
    /// Write back a dirty block evicted from the DL1.
    Writeback {
        /// Physical line.
        line: LineAddr,
    },
}

/// Core-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired: u64,
    /// Conditional branches seen.
    pub branches: u64,
    /// Mispredicted branches (direction or target).
    pub mispredicts: u64,
    /// Data loads executed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// DL1 load hits.
    pub dl1_hits: u64,
    /// DL1 load misses (block requests sent to L2, before merging).
    pub dl1_misses: u64,
    /// IL1 misses.
    pub il1_misses: u64,
    /// L1D-site prefetch requests issued to the uncore.
    pub l1_prefetches: u64,
    /// L1D-site prefetch requests dropped on a TLB2 miss.
    pub l1_prefetch_tlb_drops: u64,
}

/// An observability event reported by a core (the L1D prefetch site's
/// issue path). Buffered only while a sink is enabled
/// ([`Core::set_obs_sink`]) and drained by the simulator each cycle,
/// which stamps cycle and core id — with the sink off (the default)
/// the issue path does no event work at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreObsEvent {
    /// An L1D prefetch was issued into the uncore request path.
    L1PrefetchIssued {
        /// Physical line address of the prefetch.
        line: LineAddr,
    },
    /// A proposed L1D prefetch was dropped on the §5.5 TLB2 probe (the
    /// target was never translated, so no line address exists).
    L1PrefetchTlbDrop,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegState {
    Known(Cycle),
    Pending(u64),
}

#[derive(Debug)]
struct RobEntry {
    kind: UopKind,
    pc: u64,
    vaddr: u64,
    has_mem: bool,
    dst: Option<u8>,
    done_at: Option<Cycle>,
    /// Producers still outstanding.
    unresolved: u8,
    /// Earliest known execution start.
    ready_hint: Cycle,
    /// Dependent seqs waiting for this entry's completion.
    waiters: Vec<u64>,
    mispredicted: bool,
    /// Loads: the address translation penalty has been charged.
    translated: bool,
}

const EV_LOAD_ISSUE: u8 = 0;
const EV_RESOLVE: u8 = 1;

const PORT_RING: usize = 256;

/// One simulated core: front-end, ROB, L1 caches, TLBs and predictors.
#[derive(Debug)]
pub struct Core {
    id: CoreId,
    cfg: CoreConfig,
    trace: Box<dyn TraceSource>,
    translator: PageTranslator,
    /// TLB hierarchy (public for experiment configuration).
    pub tlbs: TlbHierarchy,
    tage: Tage,
    ittage: Ittage,
    il1: CacheArray,
    dl1: CacheArray,
    mshr: MshrFile,
    /// The pluggable L1D prefetch site (`None` = site empty, Figure 4).
    l1_prefetcher: Option<Box<dyn L1Prefetcher>>,

    rob: VecDeque<RobEntry>,
    head_seq: u64,
    next_seq: u64,
    regs: [RegState; NUM_REGS],
    events: BinaryHeap<Reverse<(Cycle, u64, u8)>>,

    fetch_stalled_until: Cycle,
    ifetch_pending: Option<LineAddr>,
    cur_fetch_vline: u64,
    pending_uop: Option<MicroOp>,
    /// Decode ring: µops pre-pulled from the trace source in blocks of
    /// `cfg.decode_batch` (empty and never refilled when batching is
    /// off). `decode_pos` is the read cursor into it.
    decode_buf: Vec<MicroOp>,
    decode_pos: usize,

    store_buffer: VecDeque<(u64, u64)>, // (pc, vaddr)
    /// The head store already charged its one-time TLB probe.
    store_probed: bool,
    /// The head store is parked on a full MSHR. Nothing this core does
    /// on its own can free a slot, so the scheduled loop may sleep the
    /// core; only a [`fill`](Self::fill) clears the flag.
    store_blocked: bool,
    ports: Vec<(Cycle, u8)>,
    int_port_ring: Vec<(Cycle, u8)>,
    fp_port_ring: Vec<(Cycle, u8)>,

    stats: CoreStats,
    /// Buffered observability events; `None` (the default) disables
    /// buffering entirely.
    obs: Option<Vec<CoreObsEvent>>,
}

impl Core {
    /// Creates a core running `trace` with the given page size and
    /// translation seed. `l1_prefetcher` occupies the L1D prefetch site
    /// (`None` leaves the site empty, as in the Figure 4 ablation); the
    /// TLB2-probe / MSHR-drop issue path of §5.5 applies to whatever
    /// prefetcher is plugged in.
    pub fn new(
        id: CoreId,
        cfg: CoreConfig,
        trace: Box<dyn TraceSource>,
        page: PageSize,
        seed: u64,
        l1_prefetcher: Option<Box<dyn L1Prefetcher>>,
    ) -> Self {
        Core {
            id,
            trace,
            translator: PageTranslator::new(seed ^ (0x517E * (id.index() as u64 + 1)), page),
            tlbs: TlbHierarchy::with_defaults(),
            tage: Tage::with_defaults(),
            ittage: Ittage::with_defaults(),
            il1: CacheArray::new(cfg.il1_size, cfg.il1_ways, PolicyKind::Lru, 1, seed ^ 1),
            dl1: CacheArray::new(cfg.dl1_size, cfg.dl1_ways, PolicyKind::Lru, 1, seed ^ 2),
            mshr: MshrFile::new(cfg.mshrs),
            l1_prefetcher,
            rob: VecDeque::with_capacity(cfg.rob_size),
            head_seq: 0,
            next_seq: 0,
            regs: [RegState::Known(0); NUM_REGS],
            events: BinaryHeap::new(),
            fetch_stalled_until: 0,
            ifetch_pending: None,
            cur_fetch_vline: u64::MAX,
            pending_uop: None,
            decode_buf: Vec::new(),
            decode_pos: 0,
            store_buffer: VecDeque::new(),
            store_probed: false,
            store_blocked: false,
            ports: vec![(u64::MAX, 0); PORT_RING],
            int_port_ring: vec![(u64::MAX, 0); PORT_RING],
            fp_port_ring: vec![(u64::MAX, 0); PORT_RING],
            stats: CoreStats::default(),
            cfg,
            obs: None,
        }
    }

    /// Enables or disables observability event buffering. While on,
    /// the simulator drains with [`drain_obs`](Self::drain_obs) every
    /// cycle it ticks this core.
    pub fn set_obs_sink(&mut self, enabled: bool) {
        self.obs = if enabled {
            Some(self.obs.take().unwrap_or_default())
        } else {
            None
        };
    }

    /// Moves any buffered [`CoreObsEvent`]s into `out`, in issue order.
    pub fn drain_obs(&mut self, out: &mut Vec<CoreObsEvent>) {
        if let Some(obs) = &mut self.obs {
            out.append(obs);
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.stats.retired
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// The virtual→physical translator (used by tests).
    pub fn translator(&self) -> &PageTranslator {
        &self.translator
    }

    /// The occupant of the L1D prefetch site, if any (introspection for
    /// tests and examples).
    pub fn l1_prefetcher(&self) -> Option<&dyn L1Prefetcher> {
        self.l1_prefetcher.as_deref()
    }

    /// Applies a runtime reconfiguration directive to the L1D-site
    /// prefetcher. Returns whether the directive was applied (`false`
    /// when the site is empty or the occupant rejects it).
    pub fn reconfigure_l1_prefetcher(&mut self, directive: &TuneDirective) -> bool {
        match self.l1_prefetcher.as_mut() {
            Some(p) => p.reconfigure(directive),
            None => false,
        }
    }

    /// Resets the retired-instruction and event counters (used at the end
    /// of warm-up; microarchitectural state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = CoreStats::default();
    }

    #[inline]
    fn entry_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        self.rob.get_mut(idx)
    }

    /// Reserves a load port at or after `t`; returns the granted cycle.
    fn reserve_port(&mut self, mut t: Cycle) -> Cycle {
        loop {
            let slot = (t as usize) % PORT_RING;
            if self.ports[slot].0 != t {
                self.ports[slot] = (t, 0);
            }
            if (self.ports[slot].1 as usize) < self.cfg.load_ports {
                self.ports[slot].1 += 1;
                return t;
            }
            t += 1;
        }
    }

    /// Reserves an execution port (INT or FP) at or after `t`.
    fn reserve_exec_port(&mut self, kind: UopKind, mut t: Cycle) -> Cycle {
        let (ring, cap) = match kind {
            UopKind::Fp | UopKind::FpDiv => (&mut self.fp_port_ring, self.cfg.fp_ports),
            _ => (&mut self.int_port_ring, self.cfg.int_ports),
        };
        loop {
            let slot = (t as usize) % PORT_RING;
            if ring[slot].0 != t {
                ring[slot] = (t, 0);
            }
            if (ring[slot].1 as usize) < cap {
                ring[slot].1 += 1;
                return t;
            }
            t += 1;
        }
    }

    /// Marks `seq` complete at `done`, propagating to the scoreboard and
    /// waking dependents.
    fn complete(&mut self, seq: u64, done: Cycle, out: &mut Vec<UncoreRequest>) {
        let (dst, waiters, mispredicted) = {
            let e = match self.entry_mut(seq) {
                Some(e) => e,
                None => return,
            };
            e.done_at = Some(done);
            (e.dst, std::mem::take(&mut e.waiters), e.mispredicted)
        };
        if let Some(d) = dst {
            if self.regs[d as usize] == RegState::Pending(seq) {
                self.regs[d as usize] = RegState::Known(done);
            }
        }
        if mispredicted {
            // Redirect at execution + pipeline-refill minimum (Table 1):
            // replaces the stall sentinel set at dispatch.
            self.fetch_stalled_until = done + self.cfg.mispredict_penalty;
        }
        for w in waiters {
            let sched = {
                let e = match self.entry_mut(w) {
                    Some(e) => e,
                    None => continue,
                };
                e.unresolved -= 1;
                e.ready_hint = e.ready_hint.max(done);
                if e.unresolved == 0 {
                    Some(e.ready_hint)
                } else {
                    None
                }
            };
            if let Some(ready) = sched {
                self.schedule_exec(w, ready, out);
            }
        }
    }

    /// Schedules execution of `seq` once all its producers are known.
    fn schedule_exec(&mut self, seq: u64, ready: Cycle, out: &mut Vec<UncoreRequest>) {
        let kind = match self.entry_mut(seq) {
            Some(e) => e.kind,
            None => return,
        };
        if kind == UopKind::Load {
            let t = self.reserve_port(ready);
            self.events.push(Reverse((t, seq, EV_LOAD_ISSUE)));
        } else {
            let start = self.reserve_exec_port(kind, ready);
            let done = start + kind.exec_latency();
            self.complete(seq, done, out);
        }
    }

    /// Executes a load's DL1 access at its issue cycle.
    fn load_issue(&mut self, seq: u64, now: Cycle, out: &mut Vec<UncoreRequest>) {
        let (pc, vaddr) = match self.entry_mut(seq) {
            Some(e) => (e.pc, e.vaddr),
            None => return,
        };
        let va = VirtAddr(vaddr);
        // Translation penalty delays the access; charged exactly once per
        // load (the walk result is kept, so a retry must not re-probe —
        // concurrent loads with set-conflicting VPNs would otherwise
        // evict each other's entries forever).
        let translated = self.entry_mut(seq).map(|e| e.translated).unwrap_or(true);
        if !translated {
            if let Some(e) = self.entry_mut(seq) {
                e.translated = true;
            }
            let penalty = self
                .tlbs
                .data_penalty(va.page_number(self.translator.page_size()));
            if penalty > 0 {
                self.events
                    .push(Reverse((now + penalty, seq, EV_LOAD_ISSUE)));
                return;
            }
        }
        let line = self.translator.translate(va);
        match self.dl1.access(line, false) {
            Some(hit) => {
                self.stats.dl1_hits += 1;
                let done = now + self.cfg.dl1_latency;
                self.complete(seq, done, out);
                if hit.was_prefetch {
                    // Prefetched hit: the L1 prefetcher triggers.
                    self.try_l1_prefetch(pc, va, out, now);
                }
            }
            None => {
                // Merge with a pending request if possible.
                if let Some(e) = self.mshr.find_mut(line) {
                    e.waiters.push(seq);
                    self.try_l1_prefetch(pc, va, out, now);
                    return;
                }
                if !self.mshr.try_alloc(line, now, false) {
                    // MSHR full: retry next cycle.
                    self.events.push(Reverse((now + 1, seq, EV_LOAD_ISSUE)));
                    return;
                }
                self.stats.dl1_misses += 1;
                self.mshr
                    .find_mut(line)
                    .expect("just allocated") // bosim-lint: allow(P002, MSHR entry allocated two lines above)
                    .waiters
                    .push(seq);
                out.push(UncoreRequest::Read {
                    line,
                    class: ReqClass::Demand,
                    ifetch: false,
                });
                self.try_l1_prefetch(pc, va, out, now);
            }
        }
    }

    /// The §5.5 L1D prefetch issue path (access-time trigger, TLB2
    /// probe, MSHR allocation), applied to whatever prefetcher occupies
    /// the site.
    fn try_l1_prefetch(
        &mut self,
        pc: u64,
        vaddr: VirtAddr,
        out: &mut Vec<UncoreRequest>,
        now: Cycle,
    ) {
        let Some(l1) = self.l1_prefetcher.as_mut() else {
            return;
        };
        let Some(target) = l1.on_access(pc, vaddr) else {
            return;
        };
        let page = self.translator.page_size();
        if !self.tlbs.prefetch_probe(target.page_number(page)) {
            self.stats.l1_prefetch_tlb_drops += 1;
            if let Some(obs) = &mut self.obs {
                obs.push(CoreObsEvent::L1PrefetchTlbDrop);
            }
            return;
        }
        let line = self.translator.translate(target);
        if self.dl1.contains(line) || self.mshr.find(line).is_some() {
            return;
        }
        if !self.mshr.try_alloc(line, now, true) {
            return; // MSHR full: drop the prefetch.
        }
        self.stats.l1_prefetches += 1;
        if let Some(obs) = &mut self.obs {
            obs.push(CoreObsEvent::L1PrefetchIssued { line });
        }
        out.push(UncoreRequest::Read {
            line,
            class: ReqClass::L1Prefetch,
            ifetch: false,
        });
    }

    /// Delivers a filled block from the uncore (the sim calls this when
    /// the block is forwarded to the DL1/IL1 fill path).
    pub fn fill(&mut self, line: LineAddr, now: Cycle, out: &mut Vec<UncoreRequest>) {
        // A fill is the one event that can unpark a head store blocked
        // on a full MSHR: it frees a slot and may land the line itself.
        self.store_blocked = false;
        if self.ifetch_pending == Some(line) {
            self.ifetch_pending = None;
            if !self.il1.contains(line) {
                self.il1.insert(
                    line,
                    false,
                    false,
                    InsertCtx {
                        demand: true,
                        core: self.id,
                    },
                );
            }
            // Fetch resumes; fall through in case a data request for the
            // same line is also pending in the MSHRs.
        }
        let Some(entry) = self.mshr.complete(line) else {
            return;
        };
        let demanded = !entry.waiters.is_empty();
        for seq in entry.waiters {
            self.complete(seq, now + 1, out);
        }
        if !self.dl1.contains(line) {
            let evicted = self.dl1.insert(
                line,
                entry.prefetch && !demanded && !entry.store,
                entry.store,
                InsertCtx {
                    demand: demanded || entry.store,
                    core: self.id,
                },
            );
            if let Some(ev) = evicted {
                if ev.dirty {
                    out.push(UncoreRequest::Writeback { line: ev.line });
                }
            }
        }
    }

    /// Drains one committed store per cycle through the DL1.
    ///
    /// A store probes the TLB once, when it first reaches the buffer
    /// head — a parked store holds its translation, it does not
    /// re-touch TLB state on every retry. A head parked on a full MSHR
    /// sets `store_blocked`: every later retry is provably identical
    /// (the DL1 and MSHR only gain the line, and the MSHR only frees a
    /// slot, through a fill), so [`next_work_cycle`]
    /// (Self::next_work_cycle) lets the scheduled loop sleep the core
    /// instead of spinning here.
    fn drain_store(&mut self, now: Cycle, out: &mut Vec<UncoreRequest>) {
        let Some(&(_pc, vaddr)) = self.store_buffer.front() else {
            return;
        };
        let va = VirtAddr(vaddr);
        if !self.store_probed {
            // Committed stores absorb translation latency; the probe
            // still charges the TLB hierarchy (fills + LRU) once.
            let _ = self
                .tlbs
                .data_penalty(va.page_number(self.translator.page_size()));
            self.store_probed = true;
        }
        let line = self.translator.translate(va);
        if self.dl1.access(line, true).is_some() {
            self.pop_store();
            return;
        }
        if let Some(e) = self.mshr.find_mut(line) {
            e.store = true;
            self.pop_store();
            return;
        }
        if self.mshr.try_alloc(line, now, false) {
            self.mshr.find_mut(line).expect("just allocated").store = true; // bosim-lint: allow(P002, MSHR entry allocated in the branch above)
            self.stats.dl1_misses += 1;
            out.push(UncoreRequest::Read {
                line,
                class: ReqClass::Demand,
                ifetch: false,
            });
            self.pop_store();
            return;
        }
        // MSHR full: the store waits at the buffer head until a fill
        // frees a slot (or lands the line itself).
        self.store_blocked = true;
    }

    /// Retires the head store from the buffer and re-arms the one-shot
    /// head-store state.
    fn pop_store(&mut self) {
        self.store_buffer.pop_front();
        self.store_probed = false;
        self.store_blocked = false;
    }

    /// Retires up to `retire_width` completed µops in program order,
    /// training the L1 prefetcher and committing stores.
    fn retire(&mut self, now: Cycle) {
        for _ in 0..self.cfg.retire_width {
            let Some(head) = self.rob.front() else {
                return;
            };
            match head.done_at {
                Some(t) if t <= now => {}
                _ => return,
            }
            if head.kind == UopKind::Store && self.store_buffer.len() >= self.cfg.store_buffer {
                return; // store buffer full: stall retirement
            }
            let e = self.rob.pop_front().expect("head exists"); // bosim-lint: allow(P002, guarded by the head inspection above)
            self.head_seq += 1;
            self.stats.retired += 1;
            if e.has_mem {
                if let Some(l1) = self.l1_prefetcher.as_mut() {
                    l1.on_retire(e.pc, VirtAddr(e.vaddr));
                }
                if e.kind == UopKind::Load {
                    self.stats.loads += 1;
                }
                if e.kind == UopKind::Store {
                    self.stats.stores += 1;
                    self.store_buffer.push_back((e.pc, e.vaddr));
                }
            }
        }
    }

    /// The next µop off the decode ring — or straight from the source
    /// when batching is off. The ring refills in `decode_batch` blocks
    /// via [`TraceSource::next_block`]; sources are infinite, so a
    /// refill always produces µops (a defensive fallback covers a
    /// custom source that ignores the contract).
    #[inline]
    fn next_decoded(&mut self) -> MicroOp {
        if self.cfg.decode_batch == 0 {
            return self.trace.next_uop();
        }
        if self.decode_pos == self.decode_buf.len() {
            self.decode_buf.clear();
            self.decode_pos = 0;
            self.trace
                .next_block(&mut self.decode_buf, self.cfg.decode_batch);
            if self.decode_buf.is_empty() {
                return self.trace.next_uop();
            }
        }
        let u = self.decode_buf[self.decode_pos];
        self.decode_pos += 1;
        u
    }

    /// Front end: fetch/dispatch up to `dispatch_width` µops.
    fn dispatch(&mut self, now: Cycle, out: &mut Vec<UncoreRequest>) {
        if now < self.fetch_stalled_until || self.ifetch_pending.is_some() {
            return;
        }
        let mut line_switches = 0;
        let mut taken_branches = 0;
        for _ in 0..self.cfg.dispatch_width {
            if self.rob.len() >= self.cfg.rob_size {
                return;
            }
            let uop = match self.pending_uop.take() {
                Some(u) => u,
                None => self.next_decoded(),
            };
            // --- Instruction fetch: 1 line and 1 taken branch per cycle.
            let vline = uop.pc >> 6;
            if vline != self.cur_fetch_vline {
                if line_switches >= 1 {
                    self.pending_uop = Some(uop);
                    return;
                }
                let page = self.translator.page_size();
                let vpn = VirtAddr(uop.pc).page_number(page);
                let penalty = self.tlbs.instr_penalty(vpn);
                if penalty > 0 {
                    self.fetch_stalled_until = now + penalty;
                    self.pending_uop = Some(uop);
                    return;
                }
                let pline = self.translator.translate(VirtAddr(uop.pc));
                if self.il1.access(pline, false).is_none() {
                    self.stats.il1_misses += 1;
                    self.ifetch_pending = Some(pline);
                    out.push(UncoreRequest::Read {
                        line: pline,
                        class: ReqClass::Demand,
                        ifetch: true,
                    });
                    self.pending_uop = Some(uop);
                    return;
                }
                self.cur_fetch_vline = vline;
                line_switches += 1;
            }

            // --- Branch prediction.
            let mut mispredicted = false;
            if uop.kind.is_branch() {
                let info = uop.branch.unwrap_or(bosim_trace::BranchInfo {
                    taken: true,
                    target: 0,
                });
                match uop.kind {
                    UopKind::CondBranch => {
                        self.stats.branches += 1;
                        let correct = self.tage.update(uop.pc, info.taken);
                        if !correct {
                            mispredicted = true;
                        }
                    }
                    UopKind::IndirectBranch => {
                        self.stats.branches += 1;
                        let correct = self.ittage.update(uop.pc, info.target);
                        if !correct {
                            mispredicted = true;
                        }
                    }
                    _ => {} // direct jumps: predicted correctly
                }
                if mispredicted {
                    self.stats.mispredicts += 1;
                }
                if info.taken {
                    taken_branches += 1;
                }
            }

            // --- Rename/dispatch into the ROB.
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut unresolved = 0u8;
            let mut ready = now;
            for src in uop.srcs.iter().flatten() {
                match self.regs[src.index()] {
                    RegState::Known(t) => ready = ready.max(t),
                    RegState::Pending(p) => {
                        // Attach to the producer's wait list.
                        if let Some(pe) = self.entry_mut(p) {
                            pe.waiters.push(seq);
                            unresolved += 1;
                        }
                    }
                }
            }
            let (vaddr, has_mem) = match uop.mem {
                Some(m) => (m.vaddr.0, true),
                None => (0, false),
            };
            self.rob.push_back(RobEntry {
                kind: uop.kind,
                pc: uop.pc,
                vaddr,
                has_mem,
                dst: uop.dst.map(|r| r.0),
                done_at: None,
                unresolved,
                ready_hint: ready,
                waiters: Vec::new(),
                mispredicted,
                translated: false,
            });
            if let Some(d) = uop.dst {
                self.regs[d.index()] = RegState::Pending(seq);
            }
            if mispredicted {
                // Stall fetch until the branch executes; `complete`
                // replaces the sentinel with the real redirect time.
                self.fetch_stalled_until = u64::MAX;
            }
            if unresolved == 0 {
                self.schedule_exec(seq, ready, out);
            }
            if mispredicted {
                return;
            }
            if taken_branches >= 1 && uop.kind.is_branch() {
                return; // 1 taken branch per fetch cycle
            }
        }
    }

    /// The earliest cycle ≥ `from` at which [`tick`](Self::tick) can do
    /// any work on its own, or [`Cycle::MAX`] when only an external
    /// [`fill`](Self::fill) can wake the core (e.g. the ROB head is an
    /// outstanding miss and the front end is blocked behind it).
    ///
    /// Used by the system loop to fast-forward through stall windows.
    /// The bound is conservative: whenever the core *might* act next
    /// cycle (dispatch can proceed, a store is draining, a retire was
    /// width-limited) it returns `from` and no cycles are skipped.
    pub fn next_work_cycle(&self, from: Cycle) -> Cycle {
        let mut t = Cycle::MAX;
        // Scheduled load issues / retries.
        if let Some(&Reverse((et, _, _))) = self.events.peek() {
            if et <= from {
                return from;
            }
            t = t.min(et);
        }
        // Retirement: a completed head retires (or frees ROB space) at
        // its completion cycle; an incomplete head waits on an event or
        // an external fill, both accounted for elsewhere.
        if let Some(head) = self.rob.front() {
            match head.done_at {
                Some(d) if d > from => t = t.min(d),
                Some(_) => return from,
                None => {}
            }
        }
        // Committed stores drain (and probe the DL1) every cycle —
        // except a head parked on a full MSHR, which only an external
        // fill can move (and a fill re-posts the core anyway).
        if !self.store_buffer.is_empty() && !self.store_blocked {
            return from;
        }
        // Front end.
        if self.ifetch_pending.is_none() {
            if from < self.fetch_stalled_until {
                // u64::MAX is the mispredict sentinel: the redirect time
                // is set when the branch completes (covered above).
                if self.fetch_stalled_until != Cycle::MAX {
                    t = t.min(self.fetch_stalled_until);
                }
            } else if self.rob.len() < self.cfg.rob_size {
                return from; // dispatch will make progress
            }
        }
        t
    }

    /// One-line state dump for stall diagnostics.
    pub fn debug_state(&self) -> String {
        let head = self.rob.front();
        let ev: Vec<String> = self
            .events
            .iter()
            .map(|std::cmp::Reverse((t, seq, k))| format!("t={t} seq={seq} k={k}"))
            .collect();
        format!(
            "rob={}/{} head_seq={} head={:?} mshr={} sb={} fetch_stall={} ifetch={:?} events=[{}]",
            self.rob.len(),
            self.cfg.rob_size,
            self.head_seq,
            head.map(|e| (e.kind, e.done_at, e.unresolved, e.ready_hint, e.vaddr)),
            self.mshr.len(),
            self.store_buffer.len(),
            self.fetch_stalled_until,
            self.ifetch_pending,
            ev.join("; "),
        )
    }

    /// Advances the core by one cycle, pushing uncore requests into `out`.
    pub fn tick(&mut self, now: Cycle, out: &mut Vec<UncoreRequest>) {
        // Process due events.
        while let Some(&Reverse((t, seq, kind))) = self.events.peek() {
            if t > now {
                break;
            }
            self.events.pop();
            match kind {
                EV_LOAD_ISSUE => self.load_issue(seq, t.max(now), out),
                EV_RESOLVE => {}
                _ => unreachable!("unknown event kind"),
            }
        }
        self.retire(now);
        self.drain_store(now, out);
        self.dispatch(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bosim_trace::{suite, ReplaySource};
    use bosim_trace::{BranchInfo, MemRef, Reg};

    /// A trivial uncore: every read completes after a fixed latency.
    struct FixedUncore {
        latency: Cycle,
        pending: Vec<(Cycle, LineAddr)>,
        reads: u64,
    }

    impl FixedUncore {
        fn new(latency: Cycle) -> Self {
            FixedUncore {
                latency,
                pending: Vec::new(),
                reads: 0,
            }
        }

        fn run(&mut self, core: &mut Core, cycles: Cycle) {
            let mut reqs = Vec::new();
            for now in 0..cycles {
                let mut i = 0;
                while i < self.pending.len() {
                    if self.pending[i].0 <= now {
                        let (_, line) = self.pending.swap_remove(i);
                        core.fill(line, now, &mut reqs);
                    } else {
                        i += 1;
                    }
                }
                core.tick(now, &mut reqs);
                for r in reqs.drain(..) {
                    if let UncoreRequest::Read { line, .. } = r {
                        self.reads += 1;
                        self.pending.push((now + self.latency, line));
                    }
                }
            }
        }
    }

    fn load(pc: u64, addr: u64, dst: u8, addr_dep: Option<u8>) -> MicroOp {
        MicroOp {
            pc,
            kind: UopKind::Load,
            dst: Some(Reg(dst)),
            srcs: [addr_dep.map(Reg), None],
            mem: Some(MemRef {
                vaddr: VirtAddr(addr),
                size: 8,
            }),
            branch: None,
        }
    }

    fn branch(pc: u64, target: u64) -> MicroOp {
        MicroOp {
            pc,
            kind: UopKind::CondBranch,
            dst: None,
            srcs: [None, None],
            mem: None,
            branch: Some(BranchInfo {
                taken: true,
                target,
            }),
        }
    }

    fn stride_l1() -> Option<Box<dyn L1Prefetcher>> {
        Some(Box::new(bosim_baselines::StridePrefetcher::with_defaults()))
    }

    fn core_with(uops: Vec<MicroOp>) -> Core {
        let trace = ReplaySource::new("test", uops);
        Core::new(
            CoreId(0),
            CoreConfig::default(),
            Box::new(trace),
            PageSize::M4,
            42,
            stride_l1(),
        )
    }

    #[test]
    fn retires_simple_alu_stream_at_high_ipc() {
        let uops: Vec<MicroOp> = (0..64)
            .map(|i| MicroOp {
                pc: 0x400000 + i * 4,
                kind: UopKind::Int,
                dst: Some(Reg((i % 8) as u8)),
                srcs: [None, None],
                mem: None,
                branch: None,
            })
            .chain(std::iter::once(branch(0x400000 + 64 * 4, 0x400000)))
            .collect();
        let mut core = core_with(uops);
        let mut unc = FixedUncore::new(20);
        unc.run(&mut core, 3000);
        let ipc = core.retired() as f64 / 3000.0;
        assert!(ipc > 2.0, "independent ALU stream IPC {ipc}");
    }

    #[test]
    fn independent_loads_overlap_mlp() {
        // 8 independent loads to distinct lines per iteration.
        let mut uops: Vec<MicroOp> = (0..8)
            .map(|i| load(0x400000 + i * 4, 0x10_0000_0000 + i * 4096, i as u8, None))
            .collect();
        uops.push(branch(0x400100, 0x400000));
        let mut core = core_with(uops);
        let mut unc = FixedUncore::new(200);
        unc.run(&mut core, 20_000);
        let mlp_ipc = core.retired();

        // Serialised chain: each load's address depends on the previous.
        let mut uops2: Vec<MicroOp> = (0..8)
            .map(|i| load(0x400000 + i * 4, 0x10_0000_0000 + i * 4096, 0, Some(0)))
            .collect();
        uops2.push(branch(0x400100, 0x400000));
        let mut core2 = core_with(uops2);
        let mut unc2 = FixedUncore::new(200);
        unc2.run(&mut core2, 20_000);
        let serial_ipc = core2.retired();

        assert!(
            mlp_ipc as f64 > serial_ipc as f64 * 2.5,
            "MLP {mlp_ipc} vs serialised {serial_ipc}"
        );
    }

    #[test]
    fn dl1_hits_do_not_go_to_uncore() {
        // Same line accessed repeatedly: one miss then hits.
        let mut uops: Vec<MicroOp> = (0..16)
            .map(|i| load(0x400000 + i * 4, 0x10_0000_0000, (i % 4) as u8, None))
            .collect();
        uops.push(branch(0x400100, 0x400000));
        let mut core = core_with(uops);
        let mut unc = FixedUncore::new(50);
        unc.run(&mut core, 5_000);
        assert!(core.retired() > 1000);
        let s = core.stats();
        assert!(s.dl1_hits > 10 * s.dl1_misses, "{s:?}");
    }

    #[test]
    fn mispredicted_branches_throttle_ipc() {
        // Data-dependent (random per encounter) branches vs loop-like
        // ones: TAGE cannot learn the former, so IPC must drop.
        fn run_with(predictable_permille: u32) -> u64 {
            let spec = bosim_trace::BenchmarkSpec {
                name: format!("branchy-{predictable_permille}"),
                short: "t".into(),
                kernels: vec![bosim_trace::KernelCfg::Branchy(
                    bosim_trace::synth::BranchyCfg {
                        ops_per_branch: 4,
                        taken_permille: 500,
                        predictable_permille,
                        resident_bytes: 4096,
                        load_every: 0,
                        code_blocks: 1,
                    },
                )],
                schedule: bosim_trace::Schedule::Interleaved(vec![1]),
                seed: 99,
                external: None,
            };
            let mut core = Core::new(
                CoreId(0),
                CoreConfig::default(),
                Box::new(spec.build()),
                PageSize::M4,
                42,
                stride_l1(),
            );
            let mut unc = FixedUncore::new(30);
            unc.run(&mut core, 30_000);
            core.retired()
        }
        let predictable = run_with(1000);
        let random = run_with(0);
        assert!(
            predictable as f64 > random as f64 * 1.5,
            "predictable {predictable} vs random {random}"
        );
        let mispredict_frac = {
            // Sanity: the random case must actually mispredict a lot.
            predictable as f64 / random as f64
        };
        assert!(mispredict_frac > 1.0);
    }

    #[test]
    fn stores_generate_writebacks_eventually() {
        let spec = suite::thrasher();
        let mut core = Core::new(
            CoreId(0),
            CoreConfig::default(),
            Box::new(spec.build()),
            PageSize::M4,
            7,
            stride_l1(),
        );
        let mut unc = FixedUncore::new(60);
        // Run long enough to fill the DL1 with dirty lines and evict.
        let mut reqs = Vec::new();
        let mut writebacks = 0;
        for now in 0..60_000 {
            let mut i = 0;
            while i < unc.pending.len() {
                if unc.pending[i].0 <= now {
                    let (_, line) = unc.pending.swap_remove(i);
                    core.fill(line, now, &mut reqs);
                } else {
                    i += 1;
                }
            }
            core.tick(now, &mut reqs);
            for r in reqs.drain(..) {
                match r {
                    UncoreRequest::Read { line, .. } => {
                        unc.pending.push((now + 60, line));
                    }
                    UncoreRequest::Writeback { .. } => writebacks += 1,
                }
            }
        }
        assert!(core.stats().stores > 1000);
        assert!(writebacks > 100, "writebacks: {writebacks}");
    }

    #[test]
    fn stride_prefetcher_issues_l1_prefetches_on_streams() {
        let spec = suite::benchmark("462").expect("exists");
        let mut core = Core::new(
            CoreId(0),
            CoreConfig::default(),
            Box::new(spec.build()),
            PageSize::M4,
            11,
            stride_l1(),
        );
        let mut unc = FixedUncore::new(100);
        unc.run(&mut core, 100_000);
        let s = core.stats();
        assert!(
            s.l1_prefetches > 50,
            "stride prefetcher should fire on libquantum-like: {s:?}"
        );
    }

    #[test]
    fn full_suite_smoke_runs() {
        for spec in suite::suite().into_iter().take(6) {
            let mut core = Core::new(
                CoreId(0),
                CoreConfig::default(),
                Box::new(spec.build()),
                PageSize::K4,
                3,
                stride_l1(),
            );
            let mut unc = FixedUncore::new(80);
            unc.run(&mut core, 20_000);
            assert!(
                core.retired() > 1_000,
                "{}: retired only {}",
                spec.name,
                core.retired()
            );
        }
    }
}
