//! Core-side models for `bosim`: the out-of-order core, branch
//! predictors and TLBs.
//!
//! * [`Core`] — trace-driven cycle-approximate out-of-order core with the
//!   Table 1 parameters (256-entry ROB, 8-wide decode, 12-wide retire,
//!   2 load ports, 32 DL1 MSHRs, 12-cycle minimum redirect penalty),
//!   private 32KB IL1/DL1 and the DL1 stride prefetcher (§5.5),
//! * [`Tage`] / [`Ittage`] — the branch predictors of Table 1,
//! * [`TlbHierarchy`] / [`PageTranslator`] — two-level TLBs and the
//!   randomising virtual-to-physical hash of §5.1.
//!
//! The core talks to the uncore (private L2, shared L3, DRAM — assembled
//! in the `bosim` crate) through [`UncoreRequest`] values and
//! [`Core::fill`] callbacks.

#![warn(missing_docs)]

mod core;
mod tage;
mod tlb;

pub use crate::core::{Core, CoreConfig, CoreObsEvent, CoreStats, UncoreRequest};
pub use tage::{Ittage, Tage, TageConfig};
pub use tlb::{PageTranslator, Tlb, TlbHierarchy, PHYS_BITS};
