//! TAGE conditional branch predictor (Seznec & Michaud, JILP 2006).
//!
//! The paper's baseline front-end uses a 31KB TAGE and a 6KB ITTAGE
//! (Table 1). This is a standard TAGE: a bimodal base predictor plus N
//! partially-tagged tables indexed with geometrically increasing global
//! history lengths; prediction comes from the longest matching history,
//! with a "use alternate on newly allocated" (`use_alt`) tie-breaker and
//! usefulness-directed allocation.

use bosim_types::mix64;

/// Folded history register: compresses an arbitrary-length global history
/// into `out_bits` by circular XOR folding.
#[derive(Debug, Clone)]
struct Folded {
    value: u32,
    out_bits: u32,
    hist_len: u32,
}

impl Folded {
    fn new(hist_len: u32, out_bits: u32) -> Self {
        Folded {
            value: 0,
            out_bits,
            hist_len,
        }
    }

    /// Shifts in the newest history bit and drops the oldest.
    fn update(&mut self, new_bit: u32, dropped_bit: u32) {
        let mask = (1u32 << self.out_bits) - 1;
        // Rotate left by one and inject the new bit.
        self.value = ((self.value << 1) | new_bit) & mask
            ^ (self.value >> (self.out_bits - 1))
            // Remove the bit that falls off the end of the history.
            ^ (dropped_bit << (self.hist_len % self.out_bits)) & mask;
        self.value &= mask;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: i8,    // 3-bit signed counter, -4..=3; >= 0 predicts taken
    useful: u8, // 2-bit usefulness
}

/// TAGE configuration.
#[derive(Debug, Clone)]
pub struct TageConfig {
    /// log2 of bimodal entries.
    pub bimodal_bits: u32,
    /// log2 of entries per tagged table.
    pub table_bits: u32,
    /// Tag width per tagged table.
    pub tag_bits: u32,
    /// History lengths, one per tagged table (geometric).
    pub history_lengths: Vec<u32>,
}

impl Default for TageConfig {
    /// Roughly 31KB: 16K bimodal (4KB) + 8 tagged tables of 1K entries
    /// (~2B each -> ~16KB) plus history machinery.
    fn default() -> Self {
        TageConfig {
            bimodal_bits: 14,
            table_bits: 10,
            tag_bits: 11,
            history_lengths: vec![4, 8, 16, 32, 64, 120, 220, 400],
        }
    }
}

/// The TAGE conditional-branch direction predictor.
#[derive(Debug)]
pub struct Tage {
    cfg: TageConfig,
    bimodal: Vec<i8>, // 2-bit counters, -2..=1; >= 0 taken
    tables: Vec<Vec<TaggedEntry>>,
    /// Global history as a bit deque (bounded by max history length).
    ghist: Vec<u8>,
    ghist_pos: usize,
    folded_idx: Vec<Folded>,
    folded_tag0: Vec<Folded>,
    folded_tag1: Vec<Folded>,
    use_alt: i8,
    /// Deterministic allocation tie-breaking.
    rng_state: u64,
    predictions: u64,
    mispredictions: u64,
}

impl Tage {
    /// Creates a TAGE predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no tagged tables.
    pub fn new(cfg: TageConfig) -> Self {
        assert!(!cfg.history_lengths.is_empty());
        let max_hist = *cfg.history_lengths.iter().max().expect("non-empty") as usize; // bosim-lint: allow(P002, history_lengths is validated non-empty)
        let tables = cfg
            .history_lengths
            .iter()
            .map(|_| vec![TaggedEntry::default(); 1 << cfg.table_bits])
            .collect();
        let folded_idx = cfg
            .history_lengths
            .iter()
            .map(|&h| Folded::new(h, cfg.table_bits))
            .collect();
        let folded_tag0 = cfg
            .history_lengths
            .iter()
            .map(|&h| Folded::new(h, cfg.tag_bits))
            .collect();
        let folded_tag1 = cfg
            .history_lengths
            .iter()
            .map(|&h| Folded::new(h, cfg.tag_bits - 1))
            .collect();
        Tage {
            bimodal: vec![0; 1 << cfg.bimodal_bits],
            tables,
            ghist: vec![0; max_hist + 1],
            ghist_pos: 0,
            folded_idx,
            folded_tag0,
            folded_tag1,
            use_alt: 0,
            rng_state: 0x8005_1CE5,
            predictions: 0,
            mispredictions: 0,
            cfg,
        }
    }

    /// Creates the default ~31KB predictor.
    pub fn with_defaults() -> Self {
        Self::new(TageConfig::default())
    }

    #[inline]
    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & ((1 << self.cfg.bimodal_bits) - 1)
    }

    #[inline]
    fn table_index(&self, pc: u64, t: usize) -> usize {
        let h = self.folded_idx[t].value as u64;
        let mixed = (pc >> 2) ^ (pc >> (3 + t as u64)) ^ h;
        (mixed as usize) & ((1 << self.cfg.table_bits) - 1)
    }

    #[inline]
    fn table_tag(&self, pc: u64, t: usize) -> u16 {
        let tag = (pc >> 2) as u32 ^ self.folded_tag0[t].value ^ (self.folded_tag1[t].value << 1);
        (tag & ((1 << self.cfg.tag_bits) - 1)) as u16
    }

    /// Returns `(provider_table, alt_table)` hit indices, longest first.
    fn matches(&self, pc: u64) -> (Option<usize>, Option<usize>) {
        let mut provider = None;
        let mut alt = None;
        for t in (0..self.tables.len()).rev() {
            let e = &self.tables[t][self.table_index(pc, t)];
            if e.tag == self.table_tag(pc, t) {
                if provider.is_none() {
                    provider = Some(t);
                } else {
                    alt = Some(t);
                    break;
                }
            }
        }
        (provider, alt)
    }

    fn table_pred(&self, pc: u64, t: usize) -> bool {
        self.tables[t][self.table_index(pc, t)].ctr >= 0
    }

    fn bimodal_pred(&self, pc: u64) -> bool {
        self.bimodal[self.bimodal_index(pc)] >= 0
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        let (provider, alt) = self.matches(pc);
        match provider {
            Some(p) => {
                let e = &self.tables[p][self.table_index(pc, p)];
                let weak = e.ctr == 0 || e.ctr == -1;
                if weak && e.useful == 0 && self.use_alt >= 0 {
                    match alt {
                        Some(a) => self.table_pred(pc, a),
                        None => self.bimodal_pred(pc),
                    }
                } else {
                    e.ctr >= 0
                }
            }
            None => self.bimodal_pred(pc),
        }
    }

    /// Updates the predictor with the actual outcome; call once per
    /// conditional branch, after [`predict`](Self::predict). Returns
    /// whether the prediction was correct.
    pub fn update(&mut self, pc: u64, taken: bool) -> bool {
        let predicted = self.predict(pc);
        let correct = predicted == taken;
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }

        let (provider, alt) = self.matches(pc);
        // Provider counter update.
        match provider {
            Some(p) => {
                let idx = self.table_index(pc, p);
                let alt_pred = match alt {
                    Some(a) => self.table_pred(pc, a),
                    None => self.bimodal_pred(pc),
                };
                let e = &mut self.tables[p][idx];
                let provider_pred = e.ctr >= 0;
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                // Usefulness: provider correct where alternate was wrong.
                if provider_pred == taken && alt_pred != taken {
                    e.useful = (e.useful + 1).min(3);
                }
                if provider_pred != taken && alt_pred == taken {
                    e.useful = e.useful.saturating_sub(1);
                    self.use_alt = (self.use_alt + 1).min(7);
                } else if provider_pred == taken && alt_pred != taken {
                    self.use_alt = (self.use_alt - 1).max(-8);
                }
            }
            None => {
                let idx = self.bimodal_index(pc);
                let c = &mut self.bimodal[idx];
                *c = (*c + if taken { 1 } else { -1 }).clamp(-2, 1);
            }
        }

        // Allocation on misprediction: claim an entry in a longer table.
        if !correct {
            let start = provider.map(|p| p + 1).unwrap_or(0);
            self.rng_state = self
                .rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1);
            let skip = (self.rng_state >> 60) & 1; // light randomisation
            let mut allocated = false;
            let mut t = start + skip as usize;
            while t < self.tables.len() {
                let idx = self.table_index(pc, t);
                let tag = self.table_tag(pc, t);
                let e = &mut self.tables[t][idx];
                if e.useful == 0 {
                    e.tag = tag;
                    e.ctr = if taken { 0 } else { -1 };
                    allocated = true;
                    break;
                }
                t += 1;
            }
            if !allocated {
                // Age usefulness to make room next time.
                for t in start..self.tables.len() {
                    let idx = self.table_index(pc, t);
                    let e = &mut self.tables[t][idx];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }

        // Advance global history.
        self.push_history(taken);
        correct
    }

    fn push_history(&mut self, taken: bool) {
        let max = self.ghist.len();
        self.ghist_pos = (self.ghist_pos + 1) % max;
        self.ghist[self.ghist_pos] = taken as u8;
        let new_bit = taken as u32;
        for (t, &hl) in self.cfg.history_lengths.clone().iter().enumerate() {
            let dropped_idx = (self.ghist_pos + max - hl as usize) % max;
            let dropped = self.ghist[dropped_idx] as u32;
            self.folded_idx[t].update(new_bit, dropped);
            self.folded_tag0[t].update(new_bit, dropped);
            self.folded_tag1[t].update(new_bit, dropped);
        }
    }

    /// `(predictions, mispredictions)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.predictions, self.mispredictions)
    }
}

/// ITTAGE-style indirect-branch target predictor (scaled down to the ~6KB
/// Table 1 budget): a PC-indexed target cache plus two tagged
/// history-indexed tables.
#[derive(Debug)]
pub struct Ittage {
    base: Vec<(u32, u64)>,        // (partial pc tag, target)
    tagged: Vec<Vec<(u32, u64)>>, // per-table (tag, target)
    hist: u64,
    predictions: u64,
    mispredictions: u64,
}

impl Ittage {
    /// Creates the default predictor (256-entry base, 2 × 256 tagged).
    pub fn with_defaults() -> Self {
        Ittage {
            base: vec![(0, 0); 256],
            tagged: vec![vec![(0, 0); 256]; 2],
            hist: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn base_idx(pc: u64) -> usize {
        (mix64(pc) as usize) & 255
    }

    fn tagged_idx(&self, pc: u64, t: usize) -> (usize, u32) {
        let hlen = if t == 0 { 8 } else { 32 };
        let h = self.hist & ((1u64 << hlen) - 1);
        let m = mix64(pc ^ h.wrapping_mul(0x9E37_79B9));
        ((m as usize) & 255, (m >> 32) as u32 | 1)
    }

    /// Predicts the target of the indirect branch at `pc`.
    pub fn predict(&self, pc: u64) -> u64 {
        for t in (0..self.tagged.len()).rev() {
            let (idx, tag) = self.tagged_idx(pc, t);
            let (etag, target) = self.tagged[t][idx];
            if etag == tag {
                return target;
            }
        }
        self.base[Self::base_idx(pc)].1
    }

    /// Updates with the actual target; returns whether the prediction was
    /// correct.
    pub fn update(&mut self, pc: u64, target: u64) -> bool {
        let predicted = self.predict(pc);
        let correct = predicted == target;
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
            // Allocate in the shortest-history table that disagrees.
            for t in 0..self.tagged.len() {
                let (idx, tag) = self.tagged_idx(pc, t);
                if self.tagged[t][idx].0 != tag || self.tagged[t][idx].1 != target {
                    self.tagged[t][idx] = (tag, target);
                    break;
                }
            }
        }
        self.base[Self::base_idx(pc)] = (1, target);
        self.hist = (self.hist << 2) ^ mix64(target) & 3;
        correct
    }

    /// `(predictions, mispredictions)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.predictions, self.mispredictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_branch_is_learned() {
        let mut t = Tage::with_defaults();
        for _ in 0..64 {
            t.update(0x400100, true);
        }
        assert!(t.predict(0x400100));
        let (p, m) = t.stats();
        assert!(m < p / 4, "{m}/{p} mispredictions on always-taken");
    }

    #[test]
    fn alternating_pattern_is_learned_via_history() {
        let mut t = Tage::with_defaults();
        let mut wrong_late = 0;
        for i in 0..4000u64 {
            let taken = i % 2 == 0;
            let correct = t.update(0x400200, taken);
            if i > 2000 && !correct {
                wrong_late += 1;
            }
        }
        assert!(
            wrong_late < 100,
            "alternating branch should be near-perfect, got {wrong_late} late errors"
        );
    }

    #[test]
    fn short_period_pattern_is_learned() {
        // Period-4 pattern TTNT requires history; bimodal alone fails.
        let mut t = Tage::with_defaults();
        let pattern = [true, true, false, true];
        let mut wrong_late = 0;
        for i in 0..8000u64 {
            let taken = pattern[(i % 4) as usize];
            let correct = t.update(0x400300, taken);
            if i > 4000 && !correct {
                wrong_late += 1;
            }
        }
        assert!(
            wrong_late < 200,
            "period-4 pattern: {wrong_late} late errors"
        );
    }

    #[test]
    fn random_branches_mispredict_about_half() {
        let mut t = Tage::with_defaults();
        let mut x = 88172645463325252u64;
        let mut wrong = 0;
        let n = 20000;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let taken = x & 1 == 1;
            if !t.update(0x400400, taken) {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / n as f64;
        assert!(
            (0.35..0.65).contains(&rate),
            "random branch misprediction rate {rate}"
        );
    }

    #[test]
    fn distinct_pcs_do_not_destructively_alias() {
        let mut t = Tage::with_defaults();
        let mut wrong_late = 0;
        for i in 0..6000u64 {
            let c1 = t.update(0x400500, true);
            let c2 = t.update(0x400504, false);
            if i > 3000 {
                wrong_late += (!c1) as u32 + (!c2) as u32;
            }
        }
        assert!(
            wrong_late < 60,
            "{wrong_late} late errors on two biased PCs"
        );
    }

    #[test]
    fn ittage_learns_stable_target() {
        let mut it = Ittage::with_defaults();
        for _ in 0..50 {
            it.update(0x400600, 0x500000);
        }
        assert_eq!(it.predict(0x400600), 0x500000);
    }

    #[test]
    fn ittage_history_distinguishes_targets() {
        // Alternating targets in a fixed global pattern: the tagged
        // tables should capture a good share after warmup.
        let mut it = Ittage::with_defaults();
        let targets = [0xA000u64, 0xB000];
        let mut wrong_late = 0;
        for i in 0..4000u64 {
            let tgt = targets[(i % 2) as usize];
            let correct = it.update(0x400700, tgt);
            if i >= 2000 && !correct {
                wrong_late += 1;
            }
        }
        assert!(
            wrong_late < 800,
            "alternating-target indirect: {wrong_late}/2000 late errors"
        );
    }
}
