//! Observability layer for the `bosim` simulator.
//!
//! The end-of-run aggregates (`PrefetchTelemetry`, the report JSON) say
//! *how much* happened; this crate records *when*. It provides four
//! pieces, all zero-dependency and all inert unless switched on by an
//! [`ObsConfig`]:
//!
//! * [`Recorder`] — a bounded, keep-first log of cycle-stamped
//!   [`Event`]s covering the prefetch lifecycle (issue, fill-queue
//!   entry, late merge, fill, first demand hit, unused eviction) and
//!   the learning/adaptation machinery (BO round and phase ends with
//!   score snapshots, epoch boundaries, tuning directives).
//! * [`EpochRow`] / [`EpochStream`] — per-epoch metric snapshots
//!   (IPC, accuracy, coverage, lateness, bus occupancy) collected as a
//!   series and optionally streamed to a JSON-lines file while the run
//!   is still in flight.
//! * [`HostProfiler`] — wall-clock attribution per simulator phase
//!   (decode, core tick, uncore tick, DRAM, fast-forward scanning),
//!   sampled deterministically so the measurement never perturbs
//!   simulated state. This is the only module in the workspace outside
//!   `bosim-bench` allowed to read the wall clock (lint rule D002).
//! * [`perfetto`] — rendering of all of the above as Chrome/Perfetto
//!   trace-event JSON (`chrome://tracing`, <https://ui.perfetto.dev>).
//!
//! Everything that lands in a `SimResult` ([`ObsReport`]) is a pure
//! function of simulated state, so golden-stats equality between the
//! naive and fast-forwarding system loops extends to the event trace.
//! The one exception — the host profile — is quarantined behind
//! [`ProfileSlot`], whose `PartialEq` ignores wall-clock data.

#![warn(missing_docs)]

mod config;
mod epoch;
mod event;
mod log;
pub mod perfetto;
mod profile;
mod report;

pub use config::ObsConfig;
pub use epoch::{EpochRow, EpochStream};
pub use event::{Event, EventKind, ObsSite};
pub use log::Recorder;
pub use profile::{HostProfile, HostProfiler, Phase, PhaseCost, PhaseTimer, ProfileSlot};
pub use report::ObsReport;
