//! Host-side self-profiling: wall-clock attribution per simulator
//! phase.
//!
//! This module is the workspace's only library code outside the bench
//! harness allowed to read wall clocks (lint rule D002): callers hand
//! out opaque [`PhaseTimer`] tokens, and all `Instant` handling stays
//! here. Measurement is *sampled deterministically* — the hot phases
//! fully time every `2^shift`-th call, decided by a call counter, never
//! by elapsed time — so enabling the profiler changes which wall-clock
//! reads happen but not a single simulated event.

use bosim_stats::Json;
use std::time::Instant;

/// A simulator phase the profiler attributes time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Benchmark/trace decode and system construction (one-shot).
    Decode,
    /// Per-cycle core ticks (pipeline, L1, TLBs).
    CoreTick,
    /// Per-cycle uncore ticks (L2s, L3, queues); includes [`Phase::Dram`].
    UncoreTick,
    /// The DRAM model's tick, nested inside the uncore tick.
    Dram,
    /// Fast-forward skip computation (`next_event` scanning).
    FastForward,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 5] = [
        Phase::Decode,
        Phase::CoreTick,
        Phase::UncoreTick,
        Phase::Dram,
        Phase::FastForward,
    ];

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Decode => "decode",
            Phase::CoreTick => "core-tick",
            Phase::UncoreTick => "uncore-tick",
            Phase::Dram => "dram",
            Phase::FastForward => "fast-forward",
        }
    }
}

/// Estimated cost of one phase.
///
/// `nanos` scales the sampled time up to the full call count;
/// `share` is its fraction of the run's total attributed time.
/// `dram` is nested inside `uncore-tick`, so shares can sum past 1.
// bosim-lint: schema(obs-profile-phase)
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCost {
    /// Phase label (see [`Phase::label`]).
    pub phase: String,
    /// Estimated total nanoseconds spent in the phase.
    pub nanos: u64,
    /// Times the phase ran.
    pub calls: u64,
    /// Calls that were actually timed.
    pub samples: u64,
    /// Fraction of the total attributed wall time (top-level phases
    /// only; the nested `dram` phase reports its own fraction too).
    pub share: f64,
}

/// The aggregated host profile of one run.
// bosim-lint: schema(obs-profile)
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfile {
    /// Total attributed nanoseconds across the top-level phases
    /// (decode + core-tick + uncore-tick + fast-forward; `dram` is a
    /// subset of `uncore-tick` and excluded from the total).
    pub total_nanos: u64,
    /// Per-phase costs, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseCost>,
}

impl HostProfile {
    /// The most expensive top-level phase, if any time was attributed.
    pub fn top_cost_center(&self) -> Option<&PhaseCost> {
        self.phases
            .iter()
            .filter(|p| p.phase != Phase::Dram.label())
            .max_by_key(|p| p.nanos)
    }

    /// JSON rendering for the profile artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("total_nanos", Json::UInt(self.total_nanos)),
            (
                "phases",
                Json::arr(self.phases.iter().map(|p| {
                    Json::obj([
                        ("phase", Json::from(p.phase.as_str())),
                        ("nanos", Json::UInt(p.nanos)),
                        ("calls", Json::UInt(p.calls)),
                        ("samples", Json::UInt(p.samples)),
                        ("share", Json::Num(p.share)),
                    ])
                })),
            ),
        ])
    }
}

/// An opaque in-flight phase measurement. Obtain one from
/// [`HostProfiler::start`] and return it to [`HostProfiler::stop`].
#[derive(Debug)]
#[must_use = "a started phase timer must be stopped to record its time"]
pub struct PhaseTimer {
    phase: Phase,
    started: Option<Instant>,
}

/// Scoped wall-clock attribution with deterministic sampling.
///
/// Disabled, `start` is a branch returning an inert token and `stop`
/// a branch discarding it — no clock reads, no allocation.
#[derive(Debug, Clone)]
pub struct HostProfiler {
    enabled: bool,
    /// Sample when `calls & mask == 0`.
    mask: u64,
    calls: [u64; 5],
    samples: [u64; 5],
    nanos: [u64; 5],
}

impl HostProfiler {
    /// A profiler that measures nothing.
    pub fn disabled() -> Self {
        HostProfiler {
            enabled: false,
            mask: 0,
            calls: [0; 5],
            samples: [0; 5],
            nanos: [0; 5],
        }
    }

    /// An active profiler timing every `2^sample_shift`-th call of
    /// each phase (shift 0 times every call). One-shot phases are
    /// always timed — their first call samples.
    pub fn new(sample_shift: u32) -> Self {
        HostProfiler {
            enabled: true,
            mask: (1u64 << sample_shift.min(63)) - 1,
            ..Self::disabled()
        }
    }

    /// Whether this profiler records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Begins a phase measurement. Cheap when disabled or when the
    /// call is not sampled.
    #[inline]
    pub fn start(&mut self, phase: Phase) -> PhaseTimer {
        if !self.enabled {
            return PhaseTimer {
                phase,
                started: None,
            };
        }
        let i = phase as usize;
        let call = self.calls[i];
        self.calls[i] = call + 1;
        let started = if call & self.mask == 0 {
            Some(Instant::now())
        } else {
            None
        };
        PhaseTimer { phase, started }
    }

    /// Ends a phase measurement, accumulating the sampled time.
    #[inline]
    pub fn stop(&mut self, timer: PhaseTimer) {
        if let Some(at) = timer.started {
            let i = timer.phase as usize;
            self.nanos[i] += at.elapsed().as_nanos() as u64;
            self.samples[i] += 1;
        }
    }

    /// Aggregates the measurements. Returns `None` when disabled.
    ///
    /// Sampled phases are scaled up: estimated time = measured time ×
    /// calls / samples. The total (and every `share`) counts only the
    /// top-level phases, since `dram` nests inside `uncore-tick`.
    pub fn report(&self) -> Option<HostProfile> {
        if !self.enabled {
            return None;
        }
        let estimate = |i: usize| -> u64 {
            if self.samples[i] == 0 {
                0
            } else {
                (self.nanos[i] as f64 * self.calls[i] as f64 / self.samples[i] as f64) as u64
            }
        };
        let total: u64 = Phase::ALL
            .iter()
            .filter(|p| **p != Phase::Dram)
            .map(|p| estimate(*p as usize))
            .sum();
        let phases = Phase::ALL
            .iter()
            .map(|p| {
                let i = *p as usize;
                let nanos = estimate(i);
                PhaseCost {
                    phase: p.label().to_string(),
                    nanos,
                    calls: self.calls[i],
                    samples: self.samples[i],
                    share: if total == 0 {
                        0.0
                    } else {
                        nanos as f64 / total as f64
                    },
                }
            })
            .collect();
        Some(HostProfile {
            total_nanos: total,
            phases,
        })
    }
}

/// A host profile slot that never participates in result equality.
///
/// `SimResult` derives `PartialEq` so golden-stats tests can pin the
/// naive and fast-forwarding loops bit-identical; wall-clock data
/// would trivially (and meaninglessly) break that. Wrapping the
/// profile in a type whose equality is always `true` keeps the
/// invariant intact while still shipping the profile in the result.
#[derive(Debug, Clone, Default)]
pub struct ProfileSlot(
    /// The profile, when profiling was enabled.
    pub Option<HostProfile>,
);

impl PartialEq for ProfileSlot {
    /// Always equal: wall-clock data carries no simulated state.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_reports_nothing() {
        let mut p = HostProfiler::disabled();
        let t = p.start(Phase::CoreTick);
        p.stop(t);
        assert!(p.report().is_none());
    }

    #[test]
    fn sampling_counts_calls_but_times_a_subset() {
        let mut p = HostProfiler::new(2); // every 4th call timed
        for _ in 0..8 {
            let t = p.start(Phase::UncoreTick);
            p.stop(t);
        }
        let r = p.report().expect("enabled");
        let uncore = &r.phases[Phase::UncoreTick as usize];
        assert_eq!(uncore.phase, "uncore-tick");
        assert_eq!(uncore.calls, 8);
        assert_eq!(uncore.samples, 2);
    }

    #[test]
    fn shift_zero_times_every_call_and_totals_exclude_dram() {
        let mut p = HostProfiler::new(0);
        for _ in 0..3 {
            let t = p.start(Phase::CoreTick);
            p.stop(t);
        }
        let t = p.start(Phase::Dram);
        p.stop(t);
        let r = p.report().expect("enabled");
        assert_eq!(r.phases[Phase::CoreTick as usize].samples, 3);
        assert_eq!(r.phases[Phase::Dram as usize].samples, 1);
        let top: u64 = Phase::ALL
            .iter()
            .filter(|ph| **ph != Phase::Dram)
            .map(|ph| r.phases[*ph as usize].nanos)
            .sum();
        assert_eq!(r.total_nanos, top);
        let top_center = r.top_cost_center().expect("some time attributed");
        assert_ne!(top_center.phase, "dram");
    }

    #[test]
    fn profile_json_carries_every_field() {
        let mut p = HostProfiler::new(0);
        let t = p.start(Phase::Decode);
        p.stop(t);
        let json = p.report().expect("enabled").to_json().to_string();
        for key in [
            "total_nanos",
            "phases",
            "phase",
            "nanos",
            "calls",
            "samples",
            "share",
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
    }

    #[test]
    fn profile_slots_never_compare_unequal() {
        let some = ProfileSlot(Some(HostProfile {
            total_nanos: 1,
            phases: vec![],
        }));
        let none = ProfileSlot(None);
        assert_eq!(some, none);
        assert_eq!(none, ProfileSlot::default());
    }
}
