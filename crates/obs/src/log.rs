//! The bounded event log.

use crate::event::Event;

/// A bounded, keep-first event log.
///
/// Recording is append-only up to the capacity; once full, further
/// events are counted (`dropped`) but not stored. Keep-first is the
/// right truncation policy for a simulator: the interesting transients
/// (warm-up, the first learning phases, the first epochs of an
/// adaptive run) happen early, and a stable prefix keeps two runs'
/// traces byte-comparable even when both overflow.
#[derive(Debug, Clone, PartialEq)]
pub struct Recorder {
    events: Vec<Event>,
    cap: usize,
    dropped: u64,
}

impl Recorder {
    /// Creates a log that keeps the first `cap` events (`cap` is
    /// clamped to at least 1). Storage grows on demand — an oversized
    /// capacity costs nothing until events actually arrive.
    pub fn new(cap: usize) -> Self {
        Recorder {
            events: Vec::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Appends an event, or counts it as dropped when full.
    #[inline]
    pub fn record(&mut self, event: Event) {
        if self.events.len() < self.cap {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events that arrived after the log filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the log into `(events, dropped)`.
    pub fn into_parts(self) -> (Vec<Event>, u64) {
        (self.events, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, ObsSite};

    fn ev(cycle: u64) -> Event {
        Event {
            cycle,
            core: 0,
            site: ObsSite::L2,
            kind: EventKind::PrefetchIssued { line: cycle },
        }
    }

    #[test]
    fn keeps_first_and_counts_overflow() {
        let mut r = Recorder::new(2);
        for c in 0..5 {
            r.record(ev(c));
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events()[0].cycle, 0);
        assert_eq!(r.events()[1].cycle, 1);
        assert_eq!(r.dropped(), 3);
        let (events, dropped) = r.into_parts();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 3);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = Recorder::new(0);
        r.record(ev(1));
        assert_eq!(r.events().len(), 1);
    }
}
