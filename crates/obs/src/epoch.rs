//! Streamed per-epoch metric snapshots.

use bosim_stats::Json;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// One epoch's worth of derived metrics for core 0's workload.
///
/// The simulator computes these at every observability epoch boundary
/// from the same counter deltas the adaptive-control layer uses, so a
/// long run becomes a time series instead of a single aggregate. Rows
/// are pure functions of simulated state: identical across repeated
/// runs and across the naive/fast-forward system loops.
// bosim-lint: schema(obs-epoch)
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRow {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// First cycle of the epoch.
    pub start_cycle: u64,
    /// Epoch length in cycles.
    pub cycles: u64,
    /// Instructions retired by core 0 during the epoch.
    pub instructions: u64,
    /// Instructions per cycle over the epoch.
    pub ipc: f64,
    /// L2-site prefetch accuracy over the epoch (useful / fills).
    pub accuracy: f64,
    /// L2-site coverage over the epoch (useful / (useful + misses)).
    pub coverage: f64,
    /// L2-site lateness over the epoch (late promotions / issued) —
    /// see `docs/OBSERVABILITY.md` for the exact definitions.
    pub lateness: f64,
    /// DRAM bus occupancy over the epoch (busy transfer cycles per
    /// channel-cycle).
    pub occupancy: f64,
    /// Lines resident in the L3 that still carry the prefetch bit at
    /// the boundary — a direct cache-pollution gauge.
    pub l3_prefetch_resident: u64,
}

impl EpochRow {
    /// Renders the row as a compact JSON object — one line of the
    /// epoch JSONL stream.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("epoch", Json::UInt(self.epoch)),
            ("start_cycle", Json::UInt(self.start_cycle)),
            ("cycles", Json::UInt(self.cycles)),
            ("instructions", Json::UInt(self.instructions)),
            ("ipc", Json::Num(self.ipc)),
            ("accuracy", Json::Num(self.accuracy)),
            ("coverage", Json::Num(self.coverage)),
            ("lateness", Json::Num(self.lateness)),
            ("occupancy", Json::Num(self.occupancy)),
            (
                "l3_prefetch_resident",
                Json::UInt(self.l3_prefetch_resident),
            ),
        ])
    }
}

/// Renders a slice of rows as a JSON-lines document (one compact
/// object per line, trailing newline).
pub fn to_jsonl(rows: &[EpochRow]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&row.to_json().to_string());
        out.push('\n');
    }
    out
}

/// An incremental JSON-lines writer for epoch rows.
///
/// Streaming is best-effort: the file is created up front, each row is
/// written and flushed at the boundary it describes (so a sweep can be
/// inspected mid-flight with `tail -f`), and I/O errors are swallowed
/// — observability must never fail or perturb a run.
#[derive(Debug)]
pub struct EpochStream {
    out: Option<BufWriter<File>>,
}

impl EpochStream {
    /// A stream that writes nowhere.
    pub fn disabled() -> Self {
        EpochStream { out: None }
    }

    /// Opens (truncates) `path` for streaming. Returns a disabled
    /// stream when the file cannot be created.
    pub fn create(path: &Path) -> Self {
        EpochStream {
            out: File::create(path).ok().map(BufWriter::new),
        }
    }

    /// Whether rows actually go anywhere.
    pub fn is_active(&self) -> bool {
        self.out.is_some()
    }

    /// Writes one row as a JSON line and flushes it.
    pub fn write_row(&mut self, row: &EpochRow) {
        if let Some(w) = &mut self.out {
            let _ = writeln!(w, "{}", row.to_json());
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(epoch: u64) -> EpochRow {
        EpochRow {
            epoch,
            start_cycle: epoch * 100,
            cycles: 100,
            instructions: 250,
            ipc: 2.5,
            accuracy: 0.5,
            coverage: 0.25,
            lateness: 0.125,
            occupancy: 0.0625,
            l3_prefetch_resident: 7,
        }
    }

    #[test]
    fn rows_render_one_line_each() {
        let text = to_jsonl(&[row(0), row(1)]);
        assert_eq!(text.lines().count(), 2);
        let first = text.lines().next().unwrap();
        assert!(first.starts_with(r#"{"epoch":0,"start_cycle":0,"cycles":100"#));
        assert!(first.contains(r#""ipc":2.5"#));
        assert!(first.contains(r#""l3_prefetch_resident":7"#));
    }

    #[test]
    fn stream_writes_and_is_tailable() {
        let path =
            std::env::temp_dir().join(format!("bosim_obs_epochs_{}.jsonl", std::process::id()));
        let mut s = EpochStream::create(&path);
        assert!(s.is_active());
        s.write_row(&row(0));
        s.write_row(&row(1));
        // Flushed at each row: readable before the stream is dropped.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, to_jsonl(&[row(0), row(1)]));
        drop(s);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_stream_is_inert() {
        let mut s = EpochStream::disabled();
        assert!(!s.is_active());
        s.write_row(&row(0));
    }
}
