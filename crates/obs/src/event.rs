//! The cycle-domain event model.
//!
//! Every event is stamped with the simulated cycle it happened on, the
//! core it belongs to and the hierarchy site that produced it. Events
//! are pure functions of simulated state — no wall-clock data — so two
//! runs of the same configuration produce identical streams, and the
//! naive and fast-forwarding system loops produce identical streams.

use bosim_stats::Json;
use std::fmt;

/// The hierarchy site an event belongs to.
///
/// This mirrors the simulator's prefetch sites plus a `Sys` track for
/// whole-system events (epoch boundaries, tuning directives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsSite {
    /// Whole-system events (epochs, directives).
    Sys,
    /// The first-level data cache site.
    L1d,
    /// The private L2 site.
    L2,
    /// The shared L3 site.
    L3,
}

impl ObsSite {
    /// Short track label (`"sys"`, `"l1d"`, `"l2"`, `"l3"`).
    pub fn label(self) -> &'static str {
        match self {
            ObsSite::Sys => "sys",
            ObsSite::L1d => "l1d",
            ObsSite::L2 => "l2",
            ObsSite::L3 => "l3",
        }
    }

    /// Stable per-site track index (0..4) used by the Perfetto export.
    pub fn track_index(self) -> u32 {
        match self {
            ObsSite::Sys => 0,
            ObsSite::L1d => 1,
            ObsSite::L2 => 2,
            ObsSite::L3 => 3,
        }
    }
}

impl fmt::Display for ObsSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened. Line addresses are raw physical line numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A prefetch request left the site's prefetcher and was accepted
    /// into the request path.
    PrefetchIssued {
        /// Target line address.
        line: u64,
    },
    /// A proposed prefetch was dropped before issue (L1: TLB probe
    /// miss; L2/L3: queue or MSHR back-pressure).
    PrefetchDropped {
        /// Target line address (0 when the address never materialised,
        /// e.g. an L1 TLB drop before translation).
        line: u64,
    },
    /// A line was accepted into the site's fill queue.
    FillQueued {
        /// Line address.
        line: u64,
    },
    /// A demand miss merged into an in-flight prefetch of the same
    /// line — the prefetch was issued but *late* (§5.4 lateness).
    LateMerge {
        /// Line address.
        line: u64,
    },
    /// A prefetched line completed and was inserted into the site's
    /// cache, still carrying its prefetch class.
    PrefetchFill {
        /// Line address.
        line: u64,
    },
    /// First demand hit on a resident prefetched line — the moment the
    /// prefetch became *useful* (accuracy numerator).
    FirstHit {
        /// Line address.
        line: u64,
    },
    /// A prefetched line was evicted without ever serving a demand hit.
    UnusedEvict {
        /// Line address.
        line: u64,
    },
    /// A best-offset learning round ended (every candidate offset was
    /// tested once); reports the current leader.
    RoundEnd {
        /// Rounds completed in the current phase.
        round: u32,
        /// Best-scoring offset so far.
        leader_offset: i64,
        /// Its score.
        leader_score: u32,
    },
    /// A best-offset learning phase ended and a new offset was adopted
    /// (§4.1/§4.3), with the full score table at the decision point.
    PhaseEnd {
        /// The adopted offset D.
        best_offset: i64,
        /// Its winning score.
        best_score: u32,
        /// Whether prefetch stays on (best score above BADSCORE).
        prefetch_on: bool,
        /// The `(offset, score)` table as it stood when the phase
        /// closed, in candidate-list order.
        scores: Vec<(i64, u32)>,
    },
    /// An observability epoch boundary was crossed (the matching
    /// metrics live in the run's [`crate::EpochRow`] series).
    EpochEnd {
        /// Zero-based epoch index that just ended.
        epoch: u64,
    },
    /// An adaptive tuning directive was routed to a site.
    Directive {
        /// Rendered directive (e.g. `"l2:degree=2"`).
        directive: String,
        /// Whether the target site accepted it.
        applied: bool,
    },
}

impl EventKind {
    /// Stable event name, used as the Perfetto event name and the
    /// `kind` field of the JSON rendering.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PrefetchIssued { .. } => "prefetch_issued",
            EventKind::PrefetchDropped { .. } => "prefetch_dropped",
            EventKind::FillQueued { .. } => "fill_queued",
            EventKind::LateMerge { .. } => "late_merge",
            EventKind::PrefetchFill { .. } => "prefetch_fill",
            EventKind::FirstHit { .. } => "first_hit",
            EventKind::UnusedEvict { .. } => "unused_evict",
            EventKind::RoundEnd { .. } => "round_end",
            EventKind::PhaseEnd { .. } => "phase_end",
            EventKind::EpochEnd { .. } => "epoch_end",
            EventKind::Directive { .. } => "directive",
        }
    }

    /// Kind-specific payload as a JSON object (the Perfetto `args`).
    pub fn args(&self) -> Json {
        match self {
            EventKind::PrefetchIssued { line }
            | EventKind::PrefetchDropped { line }
            | EventKind::FillQueued { line }
            | EventKind::LateMerge { line }
            | EventKind::PrefetchFill { line }
            | EventKind::FirstHit { line }
            | EventKind::UnusedEvict { line } => Json::obj([("line", Json::UInt(*line))]),
            EventKind::RoundEnd {
                round,
                leader_offset,
                leader_score,
            } => Json::obj([
                ("round", Json::UInt(u64::from(*round))),
                ("leader_offset", Json::Int(*leader_offset)),
                ("leader_score", Json::UInt(u64::from(*leader_score))),
            ]),
            EventKind::PhaseEnd {
                best_offset,
                best_score,
                prefetch_on,
                scores,
            } => Json::obj([
                ("best_offset", Json::Int(*best_offset)),
                ("best_score", Json::UInt(u64::from(*best_score))),
                ("prefetch_on", Json::Bool(*prefetch_on)),
                (
                    "scores",
                    Json::arr(scores.iter().map(|(offset, score)| {
                        Json::arr([Json::Int(*offset), Json::UInt(u64::from(*score))])
                    })),
                ),
            ]),
            EventKind::EpochEnd { epoch } => Json::obj([("epoch", Json::UInt(*epoch))]),
            EventKind::Directive { directive, applied } => Json::obj([
                ("directive", Json::from(directive.as_str())),
                ("applied", Json::Bool(*applied)),
            ]),
        }
    }
}

/// One cycle-stamped observability event.
// bosim-lint: schema(obs-event)
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated cycle the event happened on.
    pub cycle: u64,
    /// Owning core (requesting core for shared-L3 events; 0 for
    /// whole-system events).
    pub core: u32,
    /// Hierarchy site that produced the event.
    pub site: ObsSite,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Flat JSON rendering: the stamp fields plus the kind name and
    /// its arguments.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cycle", Json::UInt(self.cycle)),
            ("core", Json::UInt(u64::from(self.core))),
            ("site", Json::from(self.site.label())),
            ("kind", Json::from(self.kind.name())),
            ("args", self.kind.args()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_label_and_order() {
        assert_eq!(ObsSite::Sys.label(), "sys");
        assert_eq!(ObsSite::L3.to_string(), "l3");
        assert!(ObsSite::Sys < ObsSite::L1d && ObsSite::L2 < ObsSite::L3);
        assert_eq!(ObsSite::L1d.track_index(), 1);
    }

    #[test]
    fn event_json_carries_stamp_and_args() {
        let e = Event {
            cycle: 1234,
            core: 1,
            site: ObsSite::L2,
            kind: EventKind::PrefetchIssued { line: 77 },
        };
        assert_eq!(
            e.to_json().to_string(),
            r#"{"cycle":1234,"core":1,"site":"l2","kind":"prefetch_issued","args":{"line":77}}"#
        );
    }

    #[test]
    fn phase_end_snapshots_the_score_table() {
        let k = EventKind::PhaseEnd {
            best_offset: 2,
            best_score: 31,
            prefetch_on: true,
            scores: vec![(1, 4), (2, 31)],
        };
        assert_eq!(k.name(), "phase_end");
        assert_eq!(
            k.args().to_string(),
            r#"{"best_offset":2,"best_score":31,"prefetch_on":true,"scores":[[1,4],[2,31]]}"#
        );
    }
}
