//! Chrome/Perfetto trace-event JSON export.
//!
//! Renders an [`ObsReport`] in the trace-event format understood by
//! `chrome://tracing` and <https://ui.perfetto.dev>: the simulation is
//! process 1 with one thread (track) per `(core, site)` pair, the host
//! profile is process 2, and the epoch series becomes counter tracks.
//! Timestamps are microseconds in the trace-event format; the export
//! maps one simulated cycle to one microsecond, so trace time reads
//! directly as cycles.

use crate::epoch::EpochRow;
use crate::event::Event;
use crate::report::ObsReport;
use bosim_stats::Json;

/// Process id of the simulated machine.
pub const SIM_PID: u64 = 1;
/// Process id of the host-profile track.
pub const HOST_PID: u64 = 2;

/// The track (thread) id of a simulation event: four site tracks per
/// core, starting at 1 (`sys` events of core 0 land on track 1).
fn sim_tid(event: &Event) -> u64 {
    u64::from(event.core) * 4 + u64::from(event.site.track_index()) + 1
}

fn metadata(name: &str, pid: u64, tid: u64, value: &str) -> Json {
    Json::obj([
        ("name", Json::from(name)),
        ("ph", Json::from("M")),
        ("pid", Json::UInt(pid)),
        ("tid", Json::UInt(tid)),
        ("args", Json::obj([("name", Json::from(value))])),
    ])
}

fn counter(name: &str, ts: u64, key: &str, value: Json) -> Json {
    Json::obj([
        ("name", Json::from(name)),
        ("ph", Json::from("C")),
        ("ts", Json::UInt(ts)),
        ("pid", Json::UInt(SIM_PID)),
        ("tid", Json::UInt(0u64)),
        ("args", Json::obj([(key, value)])),
    ])
}

fn epoch_counters(row: &EpochRow, out: &mut Vec<Json>) {
    let ts = row.start_cycle + row.cycles;
    out.push(counter("epoch ipc", ts, "ipc", Json::Num(row.ipc)));
    out.push(counter(
        "epoch accuracy",
        ts,
        "accuracy",
        Json::Num(row.accuracy),
    ));
    out.push(counter(
        "epoch coverage",
        ts,
        "coverage",
        Json::Num(row.coverage),
    ));
    out.push(counter(
        "epoch lateness",
        ts,
        "lateness",
        Json::Num(row.lateness),
    ));
    out.push(counter(
        "epoch occupancy",
        ts,
        "occupancy",
        Json::Num(row.occupancy),
    ));
    out.push(counter(
        "l3 prefetch resident",
        ts,
        "lines",
        Json::UInt(row.l3_prefetch_resident),
    ));
}

/// Renders the report as a complete trace-event JSON document:
/// `{"traceEvents": [...]}`.
pub fn trace_json(report: &ObsReport, title: &str) -> Json {
    let mut events: Vec<Json> = Vec::new();
    events.push(metadata(
        "process_name",
        SIM_PID,
        0,
        &format!("bosim: {title}"),
    ));

    // One thread-name record per distinct (core, site) track, emitted
    // in first-appearance order.
    let mut named: Vec<u64> = Vec::new();
    for event in &report.events {
        let tid = sim_tid(event);
        if !named.contains(&tid) {
            named.push(tid);
            events.push(metadata(
                "thread_name",
                SIM_PID,
                tid,
                &format!("core{} {}", event.core, event.site.label()),
            ));
        }
    }

    for event in &report.events {
        events.push(Json::obj([
            ("name", Json::from(event.kind.name())),
            ("ph", Json::from("i")),
            ("s", Json::from("t")),
            ("ts", Json::UInt(event.cycle)),
            ("pid", Json::UInt(SIM_PID)),
            ("tid", Json::UInt(sim_tid(event))),
            ("args", event.kind.args()),
        ]));
    }

    for row in &report.epochs {
        epoch_counters(row, &mut events);
    }

    if let Some(profile) = &report.profile.0 {
        events.push(metadata("process_name", HOST_PID, 0, "bosim host profile"));
        events.push(metadata("thread_name", HOST_PID, 1, "phases"));
        // Phases laid out back-to-back as complete ("X") events; a
        // phase's span length is its estimated cost in µs.
        let mut at = 0u64;
        for phase in &profile.phases {
            if phase.nanos == 0 {
                continue;
            }
            let dur = (phase.nanos / 1_000).max(1);
            events.push(Json::obj([
                ("name", Json::from(phase.phase.as_str())),
                ("ph", Json::from("X")),
                ("ts", Json::UInt(at)),
                ("dur", Json::UInt(dur)),
                ("pid", Json::UInt(HOST_PID)),
                ("tid", Json::UInt(1u64)),
                (
                    "args",
                    Json::obj([
                        ("nanos", Json::UInt(phase.nanos)),
                        ("calls", Json::UInt(phase.calls)),
                        ("samples", Json::UInt(phase.samples)),
                        ("share", Json::Num(phase.share)),
                    ]),
                ),
            ]));
            at += dur;
        }
    }

    Json::obj([("traceEvents", Json::Arr(events))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, ObsSite};
    use crate::profile::{HostProfile, PhaseCost, ProfileSlot};

    fn report() -> ObsReport {
        ObsReport {
            events: vec![
                Event {
                    cycle: 10,
                    core: 0,
                    site: ObsSite::L2,
                    kind: EventKind::PrefetchIssued { line: 4 },
                },
                Event {
                    cycle: 12,
                    core: 1,
                    site: ObsSite::L3,
                    kind: EventKind::PrefetchFill { line: 4 },
                },
            ],
            dropped_events: 0,
            epochs: vec![EpochRow {
                epoch: 0,
                start_cycle: 0,
                cycles: 100,
                instructions: 50,
                ipc: 0.5,
                accuracy: 1.0,
                coverage: 0.5,
                lateness: 0.0,
                occupancy: 0.25,
                l3_prefetch_resident: 3,
            }],
            profile: ProfileSlot(Some(HostProfile {
                total_nanos: 5_000,
                phases: vec![PhaseCost {
                    phase: "core-tick".into(),
                    nanos: 5_000,
                    calls: 10,
                    samples: 10,
                    share: 1.0,
                }],
            })),
        }
    }

    #[test]
    fn export_has_tracks_counters_and_profile() {
        let doc = trace_json(&report(), "462 demo");
        let text = doc.to_string();
        assert!(text.starts_with(r#"{"traceEvents":["#));
        assert!(text.contains(r#""process_name""#));
        assert!(text.contains(r#""core0 l2""#));
        assert!(text.contains(r#""core1 l3""#));
        assert!(text.contains(r#""prefetch_issued""#));
        assert!(text.contains(r#""epoch accuracy""#));
        assert!(text.contains(r#""bosim host profile""#));
        assert!(text.contains(r#""ph":"X""#));
    }

    #[test]
    fn track_ids_separate_cores_and_sites() {
        let e = |core, site| Event {
            cycle: 0,
            core,
            site,
            kind: EventKind::FirstHit { line: 0 },
        };
        assert_eq!(sim_tid(&e(0, ObsSite::Sys)), 1);
        assert_eq!(sim_tid(&e(0, ObsSite::L3)), 4);
        assert_eq!(sim_tid(&e(1, ObsSite::Sys)), 5);
        assert_eq!(sim_tid(&e(2, ObsSite::L1d)), 10);
    }
}
