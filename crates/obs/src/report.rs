//! The per-run observability bundle.

use crate::epoch::{to_jsonl, EpochRow};
use crate::event::Event;
use crate::profile::ProfileSlot;
use bosim_stats::Json;

/// Everything observability collected over one run, attached to the
/// simulator's `SimResult`.
///
/// The struct derives `PartialEq`, so golden-stats equality between
/// the naive and fast-forwarding loops extends to the event stream and
/// the epoch series. The host profile is wall-clock data and is
/// excluded from equality via [`ProfileSlot`].
// bosim-lint: schema(obs-report)
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// The cycle-domain event log (empty unless event tracing was on).
    pub events: Vec<Event>,
    /// Events that arrived after the log filled up.
    pub dropped_events: u64,
    /// Per-epoch metric snapshots (empty unless epoch collection was
    /// on).
    pub epochs: Vec<EpochRow>,
    /// The host profile (present only when profiling was on; never
    /// part of equality).
    pub profile: ProfileSlot,
}

impl ObsReport {
    /// The epoch series as a JSON-lines document.
    pub fn epochs_jsonl(&self) -> String {
        to_jsonl(&self.epochs)
    }

    /// Full JSON rendering (events, epoch rows, profile).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("events", Json::arr(self.events.iter().map(Event::to_json))),
            ("dropped_events", Json::UInt(self.dropped_events)),
            (
                "epochs",
                Json::arr(self.epochs.iter().map(EpochRow::to_json)),
            ),
            (
                "profile",
                match &self.profile.0 {
                    Some(p) => p.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, ObsSite};

    #[test]
    fn empty_report_renders() {
        let r = ObsReport::default();
        assert_eq!(
            r.to_json().to_string(),
            r#"{"events":[],"dropped_events":0,"epochs":[],"profile":null}"#
        );
        assert_eq!(r.epochs_jsonl(), "");
    }

    #[test]
    fn equality_covers_events_but_not_profile() {
        let ev = Event {
            cycle: 5,
            core: 0,
            site: ObsSite::L2,
            kind: EventKind::FirstHit { line: 9 },
        };
        let a = ObsReport {
            events: vec![ev.clone()],
            ..Default::default()
        };
        let mut b = a.clone();
        assert_eq!(a, b);
        b.profile = ProfileSlot(Some(crate::HostProfile {
            total_nanos: 42,
            phases: vec![],
        }));
        assert_eq!(a, b, "profile must not participate in equality");
        b.events.clear();
        assert_ne!(a, b, "events must participate in equality");
    }
}
