//! Observability switches carried on the simulator configuration.

use std::path::PathBuf;

/// Observability configuration, carried by `SimConfig`.
///
/// Everything defaults to *off*, and the simulator's hot paths check a
/// single pre-resolved flag (or an `Option` discriminant) per feature,
/// so a default `ObsConfig` costs nothing: no allocation, no event
/// construction, no wall-clock reads. The golden-stats invariant holds
/// with observability on or off — events and epoch rows are pure
/// functions of simulated state.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// Record cycle-domain [`crate::Event`]s into the run's
    /// [`crate::Recorder`].
    pub events: bool,
    /// Event-log capacity: recording keeps the first `max_events`
    /// events and counts the rest as dropped (keep-first beats a ring
    /// here — the interesting transients are at warm-up and the first
    /// learning phases, and a stable prefix keeps traces comparable).
    pub max_events: usize,
    /// Collect per-epoch [`crate::EpochRow`] metric snapshots.
    pub epochs: bool,
    /// Epoch length in cycles for the metric snapshots (independent of
    /// any adaptive-control epoch).
    pub epoch_cycles: u64,
    /// Stream each epoch row as a JSON line to this file while the run
    /// is in flight (requires [`epochs`](Self::epochs); I/O errors are
    /// swallowed — streaming is best-effort and never fails a run).
    pub epoch_stream: Option<PathBuf>,
    /// Attribute host wall-clock time to simulator phases with the
    /// [`crate::HostProfiler`].
    pub profile: bool,
    /// Profile sampling: fully time every `2^profile_sample_shift`-th
    /// call of the hot phases and scale up at report time. 0 times
    /// every call.
    pub profile_sample_shift: u32,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            events: false,
            max_events: 65_536,
            epochs: false,
            epoch_cycles: 50_000,
            epoch_stream: None,
            profile: false,
            profile_sample_shift: 6,
        }
    }
}

impl ObsConfig {
    /// Everything on, at the default capacity and epoch length — what
    /// `bosim trace` uses.
    pub fn all() -> Self {
        ObsConfig {
            events: true,
            epochs: true,
            profile: true,
            ..Default::default()
        }
    }

    /// Whether any observability feature is enabled.
    pub fn enabled(&self) -> bool {
        self.events || self.epochs || self.profile
    }

    /// Checks internal consistency. Returns a human-readable reason on
    /// the first violated constraint; the simulator's `SimConfig`
    /// validation surfaces it as a typed error.
    ///
    /// # Errors
    ///
    /// Fails when event recording is enabled with a zero capacity,
    /// when epoch collection is enabled with a zero epoch length, or
    /// when a stream path is set without epoch collection.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.events && self.max_events == 0 {
            return Err("event tracing enabled with max_events = 0");
        }
        if self.epochs && self.epoch_cycles == 0 {
            return Err("epoch snapshots enabled with epoch_cycles = 0");
        }
        if self.epoch_stream.is_some() && !self.epochs {
            return Err("epoch_stream set but epoch snapshots are disabled");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_disabled_and_valid() {
        let c = ObsConfig::default();
        assert!(!c.enabled());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn all_enables_every_feature() {
        let c = ObsConfig::all();
        assert!(c.events && c.epochs && c.profile);
        assert!(c.enabled());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_inconsistent_switches() {
        let c = ObsConfig {
            events: true,
            max_events: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ObsConfig {
            epochs: true,
            epoch_cycles: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ObsConfig {
            epoch_stream: Some("x.jsonl".into()),
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
